package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the committed suite digest:
//
//	go test ./internal/experiment -run TestGoldenSuiteSeed42 -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/suite_seed42.sha256 from the current suite output")

const goldenDigestFile = "testdata/suite_seed42.sha256"

// suiteText renders outcomes exactly as `wsxsim` prints them: one
// Report.String() per experiment, each followed by the extra newline
// fmt.Println adds, in All() order. Any error aborts — a failed
// experiment has no canonical text.
func suiteText(t *testing.T, outs []Outcome) string {
	t.Helper()
	var b strings.Builder
	for _, o := range outs {
		if o.Err != nil {
			t.Fatalf("%s: failed: %v", o.Runner.ID, o.Err)
		}
		b.WriteString(o.Report.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenSuiteSeed42 is the regression lock on the repository's core
// promise: the full seed-42 suite output is byte-stable. It regenerates
// all 25 reports sequentially and with -parallel 4, requires the two
// renderings to be byte-identical, and compares their sha256 against the
// committed digest. Any change to report bytes — a reordered fold, a new
// RNG draw, a formatting tweak — fails here and must be accompanied by a
// deliberate `-update` of the digest.
func TestGoldenSuiteSeed42(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("full-suite golden check skipped under -race/-short (covered by the fast-subset determinism test)")
	}
	const seed = 42

	seq := suiteText(t, RunAll(seed, 1))
	par := suiteText(t, RunAll(seed, 4))
	if seq != par {
		t.Fatal("-parallel 4 suite text differs from sequential at the same seed")
	}

	sum := sha256.Sum256([]byte(seq))
	got := hex.EncodeToString(sum[:])

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenDigestFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDigestFile, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", goldenDigestFile, got)
		return
	}

	raw, err := os.ReadFile(goldenDigestFile)
	if err != nil {
		t.Fatalf("missing golden digest (regenerate with -update): %v", err)
	}
	want := strings.TrimSpace(string(raw))
	if got != want {
		t.Errorf("seed-42 suite digest changed:\n  got  %s\n  want %s\n"+
			"If the output change is intentional, rerun with -update and commit the new digest.",
			got, want)
	}
}
