//go:build race

package experiment

// raceEnabled reports whether the race detector is compiled in; tests use
// it to size suite runs so `go test -race` stays tractable.
const raceEnabled = true
