package experiment

import (
	"testing"
	"time"

	"wstrust/internal/fault"
	"wstrust/internal/resilience"
	"wstrust/internal/workload"
)

func discoveryEnv(t *testing.T, outage fault.Profile, rp resilience.Profile) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Seed:       1,
		Services:   workload.ServiceOptions{N: 4, Category: "compute"},
		Consumers:  2,
		Faults:     &outage,
		Resilience: &rp,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestDiscoveryGuardOff(t *testing.T) {
	// No resilience profile: no guard, no accounting — the byte-identical
	// baseline path.
	p := fault.Profile{}
	env, err := NewEnv(EnvConfig{
		Seed: 1, Services: workload.ServiceOptions{N: 4, Category: "compute"},
		Consumers: 2, Faults: &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(env.Candidates("compute")); got != 4 {
		t.Fatalf("candidates = %d, want 4", got)
	}
	if st := env.DiscoveryStats(); st != (DiscoveryStats{}) {
		t.Fatalf("guardless env has discovery stats: %+v", st)
	}
}

func TestDiscoveryGuardNaive(t *testing.T) {
	outage := fault.Profile{Name: "outage", Outages: []fault.Window{{From: 1, To: 3}}}
	env := discoveryEnv(t, outage, resilience.Profile{Name: "naive", Attempts: 2})

	env.faultRound = 0 // registry up: one probe succeeds, live answer
	if got := len(env.Candidates("compute")); got != 4 {
		t.Fatalf("live candidates = %d, want 4", got)
	}
	env.faultRound = 1 // outage: both probes fail, stale cache serves
	if got := len(env.Candidates("compute")); got != 4 {
		t.Fatalf("stale candidates = %d, want 4", got)
	}
	st := env.DiscoveryStats()
	want := DiscoveryStats{Calls: 2, Live: 1, Probes: 3}
	if st != want {
		t.Fatalf("naive stats = %+v, want %+v", st, want)
	}
	if st.Availability() != 1 {
		t.Fatalf("availability = %v, want 1 (warm cache)", st.Availability())
	}
}

func TestDiscoveryGuardBreaker(t *testing.T) {
	outage := fault.Profile{Name: "outage", Outages: []fault.Window{{From: 0, To: 100}}}
	env := discoveryEnv(t, outage, resilience.Profile{Name: "breaker",
		Breaker: &resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour, Jitter: 0}})

	// Cold cache during an outage from round 0: fallbacks are unserved.
	for i := 0; i < 4; i++ {
		if got := len(env.Candidates("compute")); got != 0 {
			t.Fatalf("call %d: outage with cold cache served %d candidates", i, got)
		}
	}
	st := env.DiscoveryStats()
	if st.Probes != 2 || st.Breaker.Trips != 1 {
		t.Fatalf("breaker stats after threshold: %+v", st)
	}
	if st.FastFails != 2 {
		t.Fatalf("fastFails = %d, want 2 (calls after the trip)", st.FastFails)
	}
	if st.Unserved != 4 || st.Availability() != 0 {
		t.Fatalf("cold-cache availability: %+v (avail %v)", st, st.Availability())
	}

	// After the cooldown (virtual time) the breaker admits one probe.
	env.Clock.Advance(time.Hour)
	env.Candidates("compute")
	st = env.DiscoveryStats()
	if st.Probes != 3 {
		t.Fatalf("probes after cooldown = %d, want 3 (one half-open probe)", st.Probes)
	}
	if st.Breaker.Trips != 2 {
		t.Fatalf("trips = %d, want 2 (failed probe re-opens)", st.Breaker.Trips)
	}
}
