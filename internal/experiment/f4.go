package experiment

import (
	"fmt"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/p2p"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/trust/bayesnet"
	"wstrust/internal/trust/beta"
	"wstrust/internal/trust/cf"
	"wstrust/internal/trust/complaints"
	"wstrust/internal/trust/ebay"
	"wstrust/internal/trust/eigentrust"
	"wstrust/internal/trust/expert"
	"wstrust/internal/trust/maximilien"
	"wstrust/internal/trust/pagerank"
	"wstrust/internal/trust/peertrust"
	"wstrust/internal/trust/qosrank"
	"wstrust/internal/trust/resource"
	"wstrust/internal/trust/sporas"
	"wstrust/internal/trust/vu"
	"wstrust/internal/trust/xrep"
	"wstrust/internal/trust/yusingh"
	"wstrust/internal/typology"
	"wstrust/internal/workload"
)

// MechanismBuilder constructs one surveyed mechanism wired into an
// environment (overlays, grids and policies included).
type MechanismBuilder struct {
	Name  string
	Build func(env *Env) (core.Mechanism, error)
}

// AllMechanisms returns builders for every Figure-4 mechanism implemented
// in wstrust, in deterministic order.
func AllMechanisms() []MechanismBuilder {
	overlayFor := func(env *Env, degree int) (*p2p.Overlay, []core.ConsumerID) {
		net := p2p.NewNetwork()
		ids := env.ConsumerIDs()
		nodeIDs := make([]p2p.NodeID, len(ids))
		for i, id := range ids {
			nodeIDs[i] = p2p.NodeID(id)
		}
		o := p2p.NewRandomOverlay(net, nodeIDs, degree, simclock.Stream(1, "overlay"))
		env.WireOverlay(o)
		return o, ids
	}
	gridFor := func(env *Env) (*p2p.PGrid, []p2p.NodeID, error) {
		net := p2p.NewNetwork()
		n := len(env.Consumers)
		if n < 16 {
			n = 16
		}
		ids := make([]p2p.NodeID, n)
		for i := range ids {
			ids[i] = p2p.NodeID(fmt.Sprintf("peer%03d", i))
		}
		g, err := p2p.BuildPGrid(net, ids, 3, simclock.Stream(2, "grid"))
		if err == nil {
			env.WireGrid(g)
		}
		return g, ids, err
	}
	netFor := func(env *Env) *p2p.Network {
		net := p2p.NewNetwork()
		env.WireNetwork(net)
		return net
	}

	return []MechanismBuilder{
		{"ebay", func(*Env) (core.Mechanism, error) { return ebay.New(), nil }},
		{"sporas", func(*Env) (core.Mechanism, error) { return sporas.New(sporas.WithTheta(3)), nil }},
		{"sporas+histos", func(*Env) (core.Mechanism, error) {
			return sporas.New(sporas.WithTheta(3), sporas.WithHistos(true)), nil
		}},
		{"pagerank", func(*Env) (core.Mechanism, error) { return pagerank.New(), nil }},
		{"amazon", func(*Env) (core.Mechanism, error) { return resource.NewAmazon(), nil }},
		{"epinions", func(*Env) (core.Mechanism, error) { return resource.NewEpinions(), nil }},
		{"cf-pearson", func(*Env) (core.Mechanism, error) { return cf.New(), nil }},
		{"cf-cosine", func(*Env) (core.Mechanism, error) { return cf.New(cf.WithSimilarity(cf.Cosine)), nil }},
		{"qosrank", func(env *Env) (core.Mechanism, error) {
			m := qosrank.New()
			for _, s := range env.Specs {
				m.RegisterAdvertised(s.Desc.Service, s.Desc.Advertised)
			}
			for _, c := range env.Consumers {
				if err := m.SetPreferences(c.ID, c.Prefs); err != nil {
					return nil, err
				}
			}
			return m, nil
		}},
		{"maximilien", func(env *Env) (core.Mechanism, error) {
			m := maximilien.New()
			for _, c := range env.Consumers {
				if err := m.SetPolicy(c.ID, maximilien.Policy{Weights: c.Prefs}); err != nil {
					return nil, err
				}
			}
			return m, nil
		}},
		{"expert-rules", func(*Env) (core.Mechanism, error) {
			// A generic rule base over the workload's base metrics, the kind
			// a domain expert would author in Day's framework.
			return expert.NewRules([]expert.Rule{
				{Name: "fast and dependable", Conditions: []expert.Condition{
					{Metric: qos.ResponseTime, Op: expert.LessThan, Value: 180},
					{Metric: qos.Availability, Op: expert.GreaterThan, Value: 0.9},
				}, Verdict: 0.95, Weight: 2},
				{Name: "fast", Conditions: []expert.Condition{
					{Metric: qos.ResponseTime, Op: expert.LessThan, Value: 180},
				}, Verdict: 0.8, Weight: 1},
				{Name: "slow", Conditions: []expert.Condition{
					{Metric: qos.ResponseTime, Op: expert.GreaterThan, Value: 300},
				}, Verdict: 0.15, Weight: 1},
				{Name: "flaky", Conditions: []expert.Condition{
					{Metric: qos.Availability, Op: expert.LessThan, Value: 0.8},
				}, Verdict: 0.1, Weight: 2},
			})
		}},
		{"expert-bayes", func(*Env) (core.Mechanism, error) { return expert.NewBayes(), nil }},
		{"beta", func(*Env) (core.Mechanism, error) {
			return beta.New(beta.WithPersonalized(true)), nil
		}},
		{"eigentrust", func(env *Env) (core.Mechanism, error) {
			ids := env.ConsumerIDs()
			pre := ids
			if len(pre) > 3 {
				pre = pre[len(pre)-3:] // honest tail of the population
			}
			return eigentrust.New(eigentrust.WithNetwork(netFor(env)), eigentrust.WithPreTrusted(pre...)), nil
		}},
		{"peertrust", func(env *Env) (core.Mechanism, error) {
			return peertrust.New(peertrust.WithNetwork(netFor(env))), nil
		}},
		{"complaints", func(env *Env) (core.Mechanism, error) {
			g, ids, err := gridFor(env)
			if err != nil {
				return nil, err
			}
			return complaints.New(g, ids)
		}},
		{"yu-singh", func(env *Env) (core.Mechanism, error) {
			overlay, ids := overlayFor(env, 4)
			return yusingh.New(overlay, ids), nil
		}},
		{"xrep", func(env *Env) (core.Mechanism, error) {
			overlay, ids := overlayFor(env, 4)
			return xrep.New(overlay, ids), nil
		}},
		{"wang-vassileva", func(env *Env) (core.Mechanism, error) {
			return bayesnet.New(netFor(env)), nil
		}},
		{"vu-qos", func(env *Env) (core.Mechanism, error) {
			g, ids, err := gridFor(env)
			if err != nil {
				return nil, err
			}
			// Trusted monitors see the services' true means — the role the
			// dedicated monitoring agents play in [29].
			return vu.New(g, ids, func(id core.ServiceID) (qos.Vector, bool) {
				spec, found := env.Spec(id)
				if !found {
					return nil, false
				}
				return spec.Behavior.True.Clone(), true
			})
		}},
	}
}

// F4 reproduces Figure 4: it renders the classification tree from the
// typology registry and runs every implemented mechanism on one common
// benchmark (20% complementary liars), grouping results by the three
// criteria. Decentralized mechanisms must show the communication cost the
// paper attributes to them; every mechanism must beat blind random
// selection.
func F4(seed int64) (Report, error) {
	reg := typology.Builtin()
	coordsOf := map[string]string{}
	for _, e := range reg.Entries() {
		coordsOf[e.Name] = e.Coordinates.String()
	}

	randomRegret, err := f4Baseline(seed)
	if err != nil {
		return Report{}, err
	}

	rows := [][]string{{"mechanism", "classification", "regret", "regret@20%liars", "hit", "MAE", "messages"}}
	data := map[string]float64{"random_regret": randomRegret}
	pass := true
	decentralizedWithMsgs, decentralizedTotal := 0, 0
	runOnce := func(b MechanismBuilder, liars bool) (RunResult, string, error) {
		cfg := EnvConfig{
			Seed:      seed,
			Services:  workload.ServiceOptions{N: 24, Category: "compute"},
			Consumers: 20,
		}
		if liars {
			cfg.LiarFraction = 0.2
			cfg.Attack = attack.Complementary{}
		}
		env, err := NewEnv(cfg)
		if err != nil {
			return RunResult{}, "", err
		}
		mech, err := b.Build(env)
		if err != nil {
			return RunResult{}, "", fmt.Errorf("f4: build %s: %w", b.Name, err)
		}
		res, err := env.Run(mech, RunOptions{
			Rounds: 20, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
		})
		if err != nil {
			return RunResult{}, "", fmt.Errorf("f4: run %s: %w", b.Name, err)
		}
		return res, mech.Name(), nil
	}
	for _, b := range AllMechanisms() {
		clean, mechName, err := runOnce(b, false)
		if err != nil {
			return Report{}, err
		}
		attacked, _, err := runOnce(b, true)
		if err != nil {
			return Report{}, err
		}
		coords := coordsOf[mechName]
		if coords == "" {
			coords = coordsOf[b.Name]
		}
		if coords == "" {
			coords = "(core)"
		}
		rows = append(rows, []string{
			b.Name, coords, F(clean.MeanRegret), F(attacked.MeanRegret),
			F(clean.HitRate), F(clean.MAE), FI(clean.Messages),
		})
		data[b.Name+"_regret"] = clean.MeanRegret
		data[b.Name+"_attacked"] = attacked.MeanRegret
		data[b.Name+"_messages"] = float64(clean.Messages)
		if clean.MeanRegret >= randomRegret {
			pass = false
		}
		if isDecentralized(coords) {
			decentralizedTotal++
			if clean.Messages > 0 {
				decentralizedWithMsgs++
			}
		}
	}
	if decentralizedTotal == 0 || decentralizedWithMsgs != decentralizedTotal {
		pass = false
	}
	// The survey's Section-3.1 question 3, visible in the matrix: qosrank
	// trusts raw measured data with no dishonesty defense, so forged
	// reports degrade it badly; Vu et al. consume the same data but verify
	// it against trusted monitors and shrug the attack off.
	if data["vu-qos_attacked"] >= data["qosrank_attacked"] {
		pass = false
	}

	body := reg.RenderTree() + "\n" + Table(rows)
	return Report{
		ID:    "F4",
		Title: "Classification tree and all-mechanism benchmark (Figure 4)",
		PaperClaim: "the three criteria organize all trust/reputation systems; decentralized designs pay " +
			"communication costs centralized ones do not; every mechanism beats blind choice — and " +
			"mechanisms without dishonesty detection degrade under forged reports",
		Body: body,
		Shape: fmt.Sprintf("all %d mechanisms beat random (%.3f) on the clean market; %d/%d decentralized show message cost; "+
			"under 20%% forged reports vu-qos holds %.3f while unverified qosrank degrades to %.3f",
			len(AllMechanisms()), randomRegret, decentralizedWithMsgs, decentralizedTotal,
			data["vu-qos_attacked"], data["qosrank_attacked"]),
		Pass: pass,
		Data: data,
	}, nil
}

func isDecentralized(coords string) bool {
	return len(coords) >= len("decentralized") && coords[:len("decentralized")] == "decentralized"
}

func f4Baseline(seed int64) (float64, error) {
	env, err := NewEnv(EnvConfig{
		Seed:      seed,
		Services:  workload.ServiceOptions{N: 24, Category: "compute"},
		Consumers: 20,
	})
	if err != nil {
		return 0, err
	}
	res, err := env.Run(nullMechanism{}, RunOptions{
		Rounds: 20, Category: "compute",
		EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(1)},
	})
	if err != nil {
		return 0, err
	}
	return res.MeanRegret, nil
}
