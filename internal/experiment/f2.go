package experiment

import (
	"fmt"
	"sync"

	"wstrust/internal/core"
	"wstrust/internal/monitor"
	"wstrust/internal/qos"
	"wstrust/internal/registry"
	"wstrust/internal/sla"
	"wstrust/internal/trust/beta"
	"wstrust/internal/workload"
)

// F2 reproduces Figure 2's activities model by running the same
// marketplace (30% of providers exaggerate their advertised QoS) under
// each information flow the figure diagrams:
//
//	random            — no QoS information at all (the "blind choice")
//	advertised        — trust the provider's published QoS description
//	sla               — advertised + SLA supervision with penalties
//	sensors           — third-party sensors actively probing every service
//	feedback          — consumers report to the central QoS registry
//
// The paper's claims: advertised QoS is exploitable; SLAs add guarantees
// at a setup cost; sensor monitoring is accurate but its cost scales with
// the number of services; consumer feedback achieves the accuracy at a
// fraction of the central burden.
func F2(seed int64) (Report, error) {
	type flowResult struct {
		name    string
		regret  float64
		hit     float64
		monCost float64
		msgs    int64
		setup   float64
	}
	var results []flowResult

	newEnv := func(stream string) (*Env, error) {
		return NewEnv(EnvConfig{
			Seed: seed + int64(len(stream)),
			Services: workload.ServiceOptions{
				N: 24, Category: "compute", ExaggerateFrac: 0.3, Exaggeration: 0.8,
			},
			Consumers: 20,
		})
	}

	// --- random (no QoS information) ---
	{
		env, err := newEnv("random")
		if err != nil {
			return Report{}, err
		}
		res, err := env.Run(nullMechanism{}, RunOptions{
			Rounds: 25, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(1)},
		})
		if err != nil {
			return Report{}, err
		}
		results = append(results, flowResult{name: "random", regret: res.MeanRegret, hit: res.HitRate})
	}

	// --- advertised QoS only ---
	{
		env, err := newEnv("advertised")
		if err != nil {
			return Report{}, err
		}
		res, err := env.Run(nullMechanism{}, RunOptions{
			Rounds: 25, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithAdvertisedFallback(true)},
		})
		if err != nil {
			return Report{}, err
		}
		results = append(results, flowResult{name: "advertised", regret: res.MeanRegret, hit: res.HitRate})
	}

	// --- SLA + third-party supervision ---
	{
		env, err := newEnv("sla")
		if err != nil {
			return Report{}, err
		}
		ledger := sla.NewLedger()
		// Every consumer negotiates an SLA per service it would use, based
		// on the advertised claims; violations depress the service score.
		slaMech := newSLAMechanism(env, ledger)
		res, err := env.Run(slaMech, RunOptions{
			Rounds: 25, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithAdvertisedFallback(true)},
		})
		if err != nil {
			return Report{}, err
		}
		results = append(results, flowResult{
			name: "sla", regret: res.MeanRegret, hit: res.HitRate, setup: ledger.SetupCost(),
		})
	}

	// --- third-party sensors ---
	{
		env, err := newEnv("sensors")
		if err != nil {
			return Report{}, err
		}
		tp := monitor.NewThirdParty(env.Fabric)
		for _, s := range env.Specs {
			if err := tp.Deploy(s.Desc.Service); err != nil {
				return Report{}, err
			}
		}
		mech := newMonitorMechanism(tp)
		res, err := env.Run(mech, RunOptions{
			Rounds: 25, Category: "compute",
			OnRound: func(int) { tp.ProbeAll() },
		})
		if err != nil {
			return Report{}, err
		}
		results = append(results, flowResult{
			name: "sensors", regret: res.MeanRegret, hit: res.HitRate, monCost: tp.Cost(),
		})
	}

	// --- consumer feedback to the central QoS registry ---
	{
		env, err := newEnv("feedback")
		if err != nil {
			return Report{}, err
		}
		store := registry.NewStore()
		mech := beta.New()
		res, err := env.Run(mech, RunOptions{
			Rounds: 25, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
			SubmitTo: func(fb core.Feedback) error {
				if err := store.Submit(fb); err != nil {
					return err
				}
				return mech.Submit(fb)
			},
		})
		if err != nil {
			return Report{}, err
		}
		results = append(results, flowResult{
			name: "feedback", regret: res.MeanRegret, hit: res.HitRate, msgs: store.MessageCount(),
		})
	}

	rows := [][]string{{"information flow", "mean regret", "hit rate", "monitor cost", "registry msgs", "SLA setup"}}
	for _, r := range results {
		rows = append(rows, []string{r.name, F(r.regret), F(r.hit), F(r.monCost), FI(r.msgs), F(r.setup)})
	}
	byName := map[string]flowResult{}
	for _, r := range results {
		byName[r.name] = r
	}
	// Advertised selection must be exploitable (clearly worse than both
	// QoS-informed flows; under heavy exaggeration it can even fall below
	// random, which only strengthens the claim), sensors must carry their
	// cost, and feedback must reach accuracy without monitoring cost.
	pass := byName["feedback"].regret < byName["advertised"].regret &&
		byName["sensors"].regret < byName["advertised"].regret &&
		byName["feedback"].hit > byName["advertised"].hit &&
		byName["sensors"].monCost > 0
	return Report{
		ID:    "F2",
		Title: "Activities model: the five QoS information flows (Figure 2)",
		PaperClaim: "advertised QoS is exploitable by exaggerating providers; sensors are accurate but costly; " +
			"consumer feedback reaches the accuracy while greatly lowering the central burden",
		Body: Table(rows),
		Shape: fmt.Sprintf("regret: feedback %.3f < sensors %.3f < advertised %.3f < random %.3f; sensor cost %.0f vs feedback monitor cost 0",
			byName["feedback"].regret, byName["sensors"].regret, byName["advertised"].regret, byName["random"].regret, byName["sensors"].monCost),
		Pass: pass,
		Data: map[string]float64{
			"random_regret":     byName["random"].regret,
			"advertised_regret": byName["advertised"].regret,
			"sla_regret":        byName["sla"].regret,
			"sensors_regret":    byName["sensors"].regret,
			"feedback_regret":   byName["feedback"].regret,
			"sensors_cost":      byName["sensors"].monCost,
			"sla_setup":         byName["sla"].setup,
		},
	}, nil
}

// nullMechanism knows nothing; it turns the engine into a pure
// advertised-QoS or random selector.
type nullMechanism struct{}

func (nullMechanism) Name() string               { return "none" }
func (nullMechanism) Submit(core.Feedback) error { return nil }
func (nullMechanism) Score(core.Query) (core.TrustValue, bool) {
	return core.TrustValue{Score: 0.5, Confidence: 0}, false
}

// slaMechanism scores services by their SLA compliance record: 1 minus the
// violation rate, unknown until a service has been used under agreement.
type slaMechanism struct {
	ledger *sla.Ledger

	mu         sync.Mutex
	agreements map[core.ServiceID]bool    // guarded by mu
	uses       map[core.ServiceID]float64 // guarded by mu
	violations map[core.ServiceID]float64 // guarded by mu
	env        *Env
	seq        int // guarded by mu
}

func newSLAMechanism(env *Env, ledger *sla.Ledger) *slaMechanism {
	return &slaMechanism{
		ledger:     ledger,
		agreements: map[core.ServiceID]bool{},
		uses:       map[core.ServiceID]float64{},
		violations: map[core.ServiceID]float64{},
		env:        env,
	}
}

func (m *slaMechanism) Name() string { return "sla" }

func (m *slaMechanism) Submit(fb core.Feedback) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// First use by anyone: negotiate one representative agreement from the
	// advertised claims (response time + availability).
	spec, ok := m.env.Spec(fb.Service)
	if !ok {
		return nil
	}
	if !m.agreements[fb.Service] {
		m.seq++
		adv := spec.Desc.Advertised
		requested := []sla.Obligation{}
		if rt, ok := adv[qos.ResponseTime]; ok {
			requested = append(requested, sla.Obligation{Metric: qos.ResponseTime, Threshold: rt * 1.3})
		}
		if av, ok := adv[qos.Availability]; ok {
			requested = append(requested, sla.Obligation{Metric: qos.Availability, Threshold: av * 0.95})
		}
		a, err := sla.Negotiate(fmt.Sprintf("sla-%04d", m.seq), fb.Consumer, spec.Desc.Provider,
			fb.Service, requested, adv)
		if err == nil {
			a.Consumer = "" // supervise for every consumer
			_ = m.ledger.Register(a)
			m.agreements[fb.Service] = true
		}
	}
	m.uses[fb.Service]++
	vs := m.ledger.Observe("", fb.Service, fb.Observed)
	m.violations[fb.Service] += float64(len(vs))
	return nil
}

func (m *slaMechanism) Score(q core.Query) (core.TrustValue, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	uses := m.uses[q.Subject]
	if uses == 0 {
		return core.TrustValue{Score: 0.5, Confidence: 0}, false
	}
	rate := m.violations[q.Subject] / uses
	score := clamp01(1 - rate)
	return core.TrustValue{Score: score, Confidence: uses / (uses + 5)}, true
}

// monitorMechanism scores services from the third party's trusted reports.
type monitorMechanism struct {
	tp *monitor.ThirdParty
}

func newMonitorMechanism(tp *monitor.ThirdParty) monitorMechanism {
	return monitorMechanism{tp: tp}
}

func (monitorMechanism) Name() string               { return "sensors" }
func (monitorMechanism) Submit(core.Feedback) error { return nil }

func (m monitorMechanism) Score(q core.Query) (core.TrustValue, bool) {
	rep, ok := m.tp.TrustedReport(q.Subject)
	if !ok {
		return core.TrustValue{Score: 0.5, Confidence: 0}, false
	}
	normalized := workload.GradeScale().NormalizeVector(rep)
	u := workload.BasePreferences().Utility(normalized)
	if avail, has := rep[qos.Availability]; has {
		u *= avail
	}
	return core.TrustValue{Score: clamp01(u), Confidence: 0.8}, true
}
