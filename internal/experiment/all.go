package experiment

import "fmt"

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Run  func(seed int64) (Report, error)
	Desc string
}

// All returns every experiment in DESIGN.md's index, in order.
func All() []Runner {
	return []Runner{
		{"F1", F1, "Figure 1: direct vs mediated selection scenarios"},
		{"F2", F2, "Figure 2: activities model — the five QoS information flows"},
		{"F3", F3, "Figure 3: QoS taxonomy and multi-faceted trust"},
		{"F4", F4, "Figure 4: classification tree + all-mechanism benchmark"},
		{"C1", C1, "advertised QoS is exploitable; reputation is not"},
		{"C2", C2, "monitoring cost scales with #services, feedback with usage"},
		{"C3", C3, "trust dynamics: decay and context specificity"},
		{"C4", C4, "global vs personalized under preference heterogeneity"},
		{"C5", C5, "unfair-rating defenses under attack"},
		{"C6", C6, "decentralized accuracy at a communication premium"},
		{"C7", C7, "provider reputation bootstraps new services"},
		{"C8", C8, "trust transitivity with per-hop discounting"},
		{"C9", C9, "explorer agents rehabilitate improved services"},
		{"C10", C10, "design-time vs run-time selection in dynamic environments"},
		{"A1", A1, "ablation: decay half-life (tracking vs stability)"},
		{"A2", A2, "ablation: EigenTrust pre-trusted peers vs collusion"},
		{"A3", A3, "ablation: newcomer policy vs whitewashing"},
		{"A4", A4, "ablation: P-Grid replication vs churn"},
		{"A5", A5, "ablation: P-Grid construction — central vs pairwise bootstrap"},
		{"R1", R1, "resilience: message loss sweep 0→30% with retries"},
		{"R2", R2, "resilience: node churn with route repair"},
		{"R3", R3, "resilience: registry outage, stale-catalog fallback"},
		{"R4", R4, "resilience: retry-policy ablation at fixed drop"},
		{"R5", R5, "resilience: registry outage — breaker vs naive discovery retry"},
		{"R6", R6, "resilience: overload ramp — load shedding vs queue-everything"},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiment: unknown id %q", id)
}
