package experiment

import (
	"strings"
	"testing"
)

// panicSuite is a stub runner list: one healthy experiment on each side
// of one that panics mid-run.
func panicSuite() []Runner {
	ok := func(id string) Runner {
		return Runner{ID: id, Desc: "stub", Run: func(seed int64) (Report, error) {
			return Report{ID: id, Title: "stub", Body: "ok\n", Shape: "ok", Pass: true}, nil
		}}
	}
	boom := Runner{ID: "BOOM", Desc: "stub", Run: func(seed int64) (Report, error) {
		panic("deliberate test panic")
	}}
	return []Runner{ok("OK1"), boom, ok("OK2")}
}

func TestRunSuitePanicIsolation(t *testing.T) {
	for _, parallelism := range []int{1, 3} {
		outs := RunSuite(panicSuite(), 42, parallelism)
		if len(outs) != 3 {
			t.Fatalf("parallelism %d: got %d outcomes, want 3", parallelism, len(outs))
		}
		if outs[0].Err != nil || outs[2].Err != nil {
			t.Fatalf("parallelism %d: healthy experiments failed: %v / %v",
				parallelism, outs[0].Err, outs[2].Err)
		}
		if !outs[0].Report.Pass || !outs[2].Report.Pass {
			t.Fatalf("parallelism %d: healthy reports did not pass", parallelism)
		}
		err := outs[1].Err
		if err == nil {
			t.Fatalf("parallelism %d: panicking experiment reported no error", parallelism)
		}
		msg := err.Error()
		if !strings.Contains(msg, "BOOM") || !strings.Contains(msg, "deliberate test panic") {
			t.Fatalf("parallelism %d: panic error lacks id and value: %v", parallelism, msg)
		}
		if !strings.Contains(msg, "panic_test.go") {
			t.Fatalf("parallelism %d: panic error lacks a stack trace: %v", parallelism, msg)
		}
	}
}

func TestPopulationsPanicIsolation(t *testing.T) {
	// Inline path (no pool installed): the panicking replicate's error
	// surfaces, the earlier replicates' work stands.
	suitePool.Store(nil)
	ran := make([]bool, 4)
	err := Populations(4, func(rep int) error {
		ran[rep] = true
		if rep == 2 {
			panic("replicate boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "replicate boom") {
		t.Fatalf("Populations error = %v, want the replicate panic", err)
	}
	if !strings.Contains(err.Error(), "replicate 2") {
		t.Fatalf("Populations error does not name the replicate: %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("replicate %d never ran after an earlier panic was contained", i)
		}
	}

	// Pooled path: replicates on borrowed workers are contained too.
	pool := newWorkPool(3)
	suitePool.Store(pool)
	defer suitePool.Store(nil)
	err = Populations(4, func(rep int) error {
		if rep == 1 {
			panic("pooled boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "pooled boom") {
		t.Fatalf("pooled Populations error = %v, want the replicate panic", err)
	}
}
