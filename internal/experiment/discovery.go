package experiment

import (
	"wstrust/internal/resilience"
	"wstrust/internal/soa"
)

// discoveryGuard sits between Env.Candidates and the UDDI availability
// check, pricing discovery the way a serving stack would: every
// availability probe is a message to the registry, and the guard decides
// how many of them a call is willing to pay. Two regimes exist — naive
// retry (probe up to attempts times, burning a message each) and circuit
// breaking (stop probing after the breaker trips, fast-fail to the stale
// catalog for free until the cooldown admits a half-open probe). An env
// without a resilience profile has no guard and pays nothing, keeping
// its runs byte-identical to builds without this layer.
type discoveryGuard struct {
	breaker  *resilience.Breaker
	attempts int // naive probes per call while the registry is down (min 1)

	calls     int64 // discovery calls answered (live or stale)
	live      int64 // calls served from the live registry
	unserved  int64 // stale fallbacks that found an empty catalog cache
	probes    int64 // availability probes sent (each is one message)
	fastFails int64 // calls the breaker refused without probing
}

// DiscoveryStats is the guard's accounting, surfaced for the resilience
// experiments. Zero when the env has no resilience profile.
type DiscoveryStats struct {
	// Calls is the number of Candidates lookups under the guard; Live is
	// how many were answered from the live registry (the rest fell back
	// to the stale catalog). Unserved counts fallbacks that found the
	// stale cache empty — the only case a consumer truly gets no answer.
	Calls, Live, Unserved int64
	// Probes counts availability probes sent to the registry — the
	// message bill discovery ran up. FastFails counts calls the breaker
	// answered from cache without spending a probe.
	Probes, FastFails int64
	// Breaker is the breaker's own accounting (zero for naive profiles).
	Breaker resilience.BreakerStats
}

// Availability is the fraction of discovery calls that came back with a
// usable candidate set, live or stale (1 when no call was ever unserved).
func (s DiscoveryStats) Availability() float64 {
	if s.Calls == 0 {
		return 1
	}
	return float64(s.Calls-s.Unserved) / float64(s.Calls)
}

// DiscoveryStats reports the discovery guard's accounting (zero when the
// env has no resilience profile).
func (e *Env) DiscoveryStats() DiscoveryStats {
	g := e.discovery
	if g == nil {
		return DiscoveryStats{}
	}
	st := DiscoveryStats{
		Calls: g.calls, Live: g.live, Unserved: g.unserved,
		Probes: g.probes, FastFails: g.fastFails,
	}
	if g.breaker != nil {
		st.Breaker = g.breaker.Stats()
	}
	return st
}

// discoveryUp decides whether this Candidates call may read the live
// registry, spending probes and breaker transitions according to the
// env's resilience profile. Without a guard it is exactly the free
// Available() check every experiment has always made.
func (e *Env) discoveryUp(uddi *soa.UDDI) bool {
	g := e.discovery
	if g == nil {
		return uddi.Available()
	}
	g.calls++
	up := false
	switch {
	case g.breaker != nil:
		if !g.breaker.Allow() {
			g.fastFails++
			break
		}
		g.probes++
		up = uddi.Available()
		if up {
			g.breaker.Success()
		} else {
			g.breaker.Failure()
		}
	default:
		for i := 0; i < g.attempts; i++ {
			g.probes++
			if uddi.Available() {
				up = true
				break
			}
		}
	}
	if up {
		g.live++
	}
	return up
}
