package experiment

import (
	"fmt"
	"math"
	"sort"
	"time"

	"wstrust/internal/core"
	"wstrust/internal/fault"
	"wstrust/internal/resilience"
	"wstrust/internal/simclock"
	"wstrust/internal/workload"
)

// R5 and R6 extend the resilience series from the substrate (R1–R4) to
// the serving layer this PR adds: what a deployment in front of the
// paper's central QoS registry must do when the registry goes down (R5:
// circuit breaking vs naive retry) or when demand outruns it (R6: load
// shedding vs queueing). Both stay inside the deterministic harness —
// virtual clocks, seeded streams — so their tables are as reproducible as
// every other experiment's.

// r5Window is the registry outage R5 injects: rounds 4–13 of a 20-round
// run, long enough for breakers to trip, cool down, and probe.
var r5Window = fault.Window{From: 4, To: 14}

const r5Rounds = 20

// r5Run drives one mechanism through the outage under one discovery
// regime and reports selection quality plus the discovery bill.
func r5Run(seed int64, b MechanismBuilder, rp resilience.Profile) (RunResult, DiscoveryStats, error) {
	p := fault.Profile{Name: "outage", Outages: []fault.Window{r5Window}}
	env, err := NewEnv(EnvConfig{
		Seed:       seed,
		Services:   workload.ServiceOptions{N: 16, Category: "compute"},
		Consumers:  12,
		Faults:     &p,
		Resilience: &rp,
	})
	if err != nil {
		return RunResult{}, DiscoveryStats{}, err
	}
	mech, err := b.Build(env)
	if err != nil {
		return RunResult{}, DiscoveryStats{}, fmt.Errorf("r5: build %s: %w", b.Name, err)
	}
	res, err := env.Run(mech, RunOptions{
		Rounds: r5Rounds, Category: "compute",
		EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
	})
	if err != nil {
		return RunResult{}, DiscoveryStats{}, fmt.Errorf("r5: run %s under %s: %w", b.Name, rp, err)
	}
	return res, env.DiscoveryStats(), nil
}

// R5 prices discovery during a registry outage under the two regimes a
// serving stack can adopt: naive retry (every consumer keeps probing the
// dead registry) versus a circuit breaker (probes stop after the trip;
// consumers fast-fail to their stale catalog until the cooldown admits a
// half-open probe). Selection itself is untouched — both regimes fall
// back to the same stale catalog, so regret and availability must come
// out identical; the entire difference is the message bill.
func R5(seed int64) (Report, error) {
	naive := resilience.Profile{Name: "naive", Attempts: 3}
	breaker := resilience.Profile{Name: "breaker",
		Breaker: &resilience.BreakerConfig{FailureThreshold: 3, Cooldown: 90 * time.Minute}}

	rows := [][]string{{"mechanism", "regime", "regret", "avail", "probes", "fastFails", "trips"}}
	data := map[string]float64{}
	pass := true
	for _, b := range resilienceBuilders([]string{"ebay", "complaints"}) {
		nRes, nStats, err := r5Run(seed, b, naive)
		if err != nil {
			return Report{}, err
		}
		bRes, bStats, err := r5Run(seed, b, breaker)
		if err != nil {
			return Report{}, err
		}
		for _, row := range []struct {
			regime string
			res    RunResult
			st     DiscoveryStats
		}{{"naive", nRes, nStats}, {"breaker", bRes, bStats}} {
			rows = append(rows, []string{
				b.Name, row.regime, F(row.res.MeanRegret), F(row.st.Availability()),
				FI(row.st.Probes), FI(row.st.FastFails), FI(row.st.Breaker.Trips),
			})
			data[b.Name+"_"+row.regime+"_regret"] = row.res.MeanRegret
			data[b.Name+"_"+row.regime+"_avail"] = row.st.Availability()
			data[b.Name+"_"+row.regime+"_probes"] = float64(row.st.Probes)
		}
		data[b.Name+"_breaker_trips"] = float64(bStats.Breaker.Trips)
		// The claim, mechanism by mechanism: the breaker strictly cuts the
		// discovery message bill, at identical selection quality and
		// equal-or-better availability, and it actually tripped (the saving
		// is the state machine's doing, not an accident of the workload).
		if !(bStats.Probes < nStats.Probes) ||
			bRes.MeanRegret != nRes.MeanRegret ||
			bStats.Availability() < nStats.Availability() ||
			bStats.Breaker.Trips < 1 {
			pass = false
		}
	}

	return Report{
		ID:    "R5",
		Title: "resilience: registry outage — circuit breaker vs naive discovery retry",
		PaperClaim: "fast-failing discovery during a registry outage saves the probe traffic " +
			"naive retry wastes, while the stale-catalog fallback keeps selection and " +
			"availability unchanged",
		Body: Table(rows),
		Shape: fmt.Sprintf("over a %d-round outage, breaker spends %.0f+%.0f probes vs naive "+
			"%.0f+%.0f at byte-identical regret and availability 1.000",
			r5Window.To-r5Window.From,
			data["ebay_breaker_probes"], data["complaints_breaker_probes"],
			data["ebay_naive_probes"], data["complaints_naive_probes"]),
		Pass: pass,
		Data: data,
	}, nil
}

// r6Result is one overload-ramp run's summary.
type r6Result struct {
	offered, admitted, shed int64
	goodput                 int64 // requests completed within their deadline
	late                    int64 // completed, but past the deadline
	p99                     float64
	offeredByClass          [4]int64
	shedByClass             [4]int64
}

// shedRate is the fraction of a class's offered traffic that was shed.
func (r r6Result) shedRate(p resilience.Priority) float64 {
	if r.offeredByClass[p] == 0 {
		return 0
	}
	return float64(r.shedByClass[p]) / float64(r.offeredByClass[p])
}

// r6Capacity is the server's service rate in requests per second of
// virtual time; r6Deadline is each request's latency budget.
const (
	r6Capacity = 20
	r6Deadline = 2.0 // seconds
	r6Ticks    = 120 // one ramp = 120 virtual seconds
)

// r6Offered is the offered load at a tick: a ramp from 0.5× capacity to
// 10× capacity over the run.
func r6Offered(tick int) int {
	frac := float64(tick) / float64(r6Ticks-1)
	rate := (0.5 + 9.5*frac) * r6Capacity
	return int(rate)
}

// r6Run simulates the ramp against a FIFO server in virtual time, with or
// without a token-bucket shedder in front of it. Arrival priorities come
// from a seeded stream, so both runs see the identical request sequence.
func r6Run(seed int64, shed bool) r6Result {
	clock := simclock.NewVirtual()
	rng := simclock.Stream(seed, "r6.arrivals")
	var shedder *resilience.Shedder
	if shed {
		shedder = resilience.NewShedder(resilience.ShedderConfig{
			Rate: r6Capacity, Burst: r6Capacity, // one second of headroom
		}, clock)
	}

	var res r6Result
	var latencies []float64
	backlog := 0.0 // requests queued ahead of the next arrival
	for tick := 0; tick < r6Ticks; tick++ {
		offered := r6Offered(tick)
		for i := 0; i < offered; i++ {
			res.offered++
			// Priority mix: 10% critical, 20% high, 40% normal, 30% low.
			var p resilience.Priority
			switch u := rng.Float64(); {
			case u < 0.10:
				p = resilience.Critical
			case u < 0.30:
				p = resilience.High
			case u < 0.70:
				p = resilience.Normal
			default:
				p = resilience.Low
			}
			res.offeredByClass[p]++
			if shedder != nil && !shedder.Admit(p) {
				res.shed++
				res.shedByClass[p]++
				continue
			}
			res.admitted++
			// FIFO latency: drain the queue ahead of us, then our own slot.
			latency := backlog/r6Capacity + 1.0/r6Capacity
			latencies = append(latencies, latency)
			if latency <= r6Deadline {
				res.goodput++
			} else {
				res.late++
			}
			backlog++
		}
		backlog -= r6Capacity // one second of service
		if backlog < 0 {
			backlog = 0
		}
		clock.Advance(time.Second)
	}

	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		idx := int(math.Ceil(0.99*float64(n))) - 1
		res.p99 = latencies[idx]
	}
	return res
}

// R6 rams 10× overload into a fixed-capacity registry front-end with and
// without the load shedder. Unshed, every request queues: throughput
// pins at capacity but waiting times blow through the deadline and
// goodput collapses. Shed, admission is bounded at capacity: excess
// (lowest priority first) is refused outright, and what is admitted
// finishes inside its deadline.
func R6(seed int64) (Report, error) {
	raw := r6Run(seed, false)
	shed := r6Run(seed, true)

	rows := [][]string{
		{"regime", "offered", "admitted", "shed", "goodput", "late", "p99(s)"},
		{"queue-all", FI(raw.offered), FI(raw.admitted), FI(raw.shed),
			FI(raw.goodput), FI(raw.late), F(raw.p99)},
		{"shedding", FI(shed.offered), FI(shed.admitted), FI(shed.shed),
			FI(shed.goodput), FI(shed.late), F(shed.p99)},
		{"shed rate by class",
			fmt.Sprintf("critical=%.0f%%", 100*shed.shedRate(resilience.Critical)),
			fmt.Sprintf("high=%.0f%%", 100*shed.shedRate(resilience.High)),
			fmt.Sprintf("normal=%.0f%%", 100*shed.shedRate(resilience.Normal)),
			fmt.Sprintf("low=%.0f%%", 100*shed.shedRate(resilience.Low)), "", ""},
	}
	data := map[string]float64{
		"raw_goodput": float64(raw.goodput), "raw_late": float64(raw.late), "raw_p99": raw.p99,
		"shed_goodput": float64(shed.goodput), "shed_total": float64(shed.shed), "shed_p99": shed.p99,
		"shed_rate_critical": shed.shedRate(resilience.Critical),
		"shed_rate_high":     shed.shedRate(resilience.High),
		"shed_rate_normal":   shed.shedRate(resilience.Normal),
		"shed_rate_low":      shed.shedRate(resilience.Low),
	}

	// The shape: shedding bounds p99 within the deadline while the
	// unshed queue blows far past it; on-time goodput is strictly higher
	// with shedding; and the priority floors bite bottom-up — each class
	// is shed at a strictly higher rate than the class above it.
	pass := shed.p99 <= r6Deadline &&
		raw.p99 > 5*r6Deadline &&
		shed.goodput > raw.goodput &&
		shed.shedRate(resilience.Low) > shed.shedRate(resilience.Normal) &&
		shed.shedRate(resilience.Normal) > shed.shedRate(resilience.High) &&
		shed.shedRate(resilience.High) > shed.shedRate(resilience.Critical)

	return Report{
		ID:    "R6",
		Title: "resilience: overload ramp — load shedding vs queue-everything",
		PaperClaim: "a registry that queues unbounded overload misses every deadline; " +
			"admission control sheds excess (lowest priority first) and keeps the " +
			"work it accepts inside its latency budget",
		Body: Table(rows),
		Shape: fmt.Sprintf("at 10× overload p99 is %.2fs unshed vs %.2fs shed (deadline %.0fs); "+
			"on-time goodput %d vs %d; shed rates critical/high/normal/low = %.0f%%/%.0f%%/%.0f%%/%.0f%%",
			raw.p99, shed.p99, r6Deadline, raw.goodput, shed.goodput,
			100*shed.shedRate(resilience.Critical), 100*shed.shedRate(resilience.High),
			100*shed.shedRate(resilience.Normal), 100*shed.shedRate(resilience.Low)),
		Pass: pass,
		Data: data,
	}, nil
}
