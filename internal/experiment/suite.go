package experiment

import "sync"

// Outcome is one experiment's result within a suite run.
type Outcome struct {
	Runner Runner
	Report Report
	Err    error
}

// RunAll executes every experiment in All() at the given seed, fanning the
// independent runs out over at most parallelism workers (parallelism < 1
// and 1 both run sequentially, in the caller's goroutine).
//
// Determinism: each experiment builds its own Env — clock, fabric, seeded
// RNG streams — and shares no mutable state with the others, so the report
// for every experiment is byte-identical to a sequential run at the same
// seed regardless of parallelism or scheduling. Outcomes are returned in
// All() order.
func RunAll(seed int64, parallelism int) []Outcome {
	return RunSuite(All(), seed, parallelism)
}

// RunSuite is RunAll over an explicit runner list.
func RunSuite(runners []Runner, seed int64, parallelism int) []Outcome {
	out := make([]Outcome, len(runners))
	if parallelism > len(runners) {
		parallelism = len(runners)
	}
	if parallelism <= 1 {
		for i, r := range runners {
			rep, err := r.Run(seed)
			out[i] = Outcome{Runner: r, Report: rep, Err: err}
		}
		return out
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rep, err := runners[i].Run(seed)
				out[i] = Outcome{Runner: runners[i], Report: rep, Err: err}
			}
		}()
	}
	for i := range runners {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
