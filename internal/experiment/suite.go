package experiment

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Outcome is one experiment's result within a suite run.
type Outcome struct {
	Runner Runner
	Report Report
	Err    error
}

// RunAll executes every experiment in All() at the given seed, fanning the
// independent runs out over at most parallelism workers (parallelism < 1
// and 1 both run sequentially, in the caller's goroutine).
//
// Determinism: each experiment builds its own Env — clock, fabric, seeded
// RNG streams — and shares no mutable state with the others, so the report
// for every experiment is byte-identical to a sequential run at the same
// seed regardless of parallelism or scheduling. Outcomes are returned in
// All() order.
func RunAll(seed int64, parallelism int) []Outcome {
	return RunSuite(All(), seed, parallelism)
}

// RunSuite is RunAll over an explicit runner list.
func RunSuite(runners []Runner, seed int64, parallelism int) []Outcome {
	out := make([]Outcome, len(runners))
	if parallelism <= 1 {
		// A sequential run must stay sequential end to end (it is the
		// baseline the determinism tests diff against), so no pool is
		// offered to nested population fan-outs either.
		suitePool.Store(nil)
		for i, r := range runners {
			rep, err := runProtected(r, seed)
			out[i] = Outcome{Runner: r, Report: rep, Err: err}
		}
		return out
	}

	// Worker goroutines are capped by the job count, but the token pool
	// keeps the full -parallel budget: once the job queue drains and the
	// tail experiments dominate, the freed tokens let Populations fan
	// population replicates (C4, F3) onto the idle capacity.
	workers := parallelism
	if workers > len(runners) {
		workers = len(runners)
	}
	pool := newWorkPool(parallelism)
	suitePool.Store(pool)

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pool.acquire()
				rep, err := runProtected(runners[i], seed)
				out[i] = Outcome{Runner: runners[i], Report: rep, Err: err}
				pool.release()
			}
		}()
	}
	for i := range runners {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// runProtected executes one experiment with panic isolation: a panicking
// experiment becomes a failed Outcome carrying the panic value and stack,
// instead of killing its worker goroutine and with it the whole suite.
// wsxsim already exits non-zero on any Outcome.Err, so a panic still
// fails the run — it just lets every other experiment finish and report
// first.
func runProtected(r Runner, seed int64) (rep Report, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("experiment %s: panic: %v\n%s", r.ID, rec, debug.Stack())
		}
	}()
	return r.Run(seed)
}
