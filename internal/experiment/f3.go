package experiment

import (
	"fmt"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/trust/beta"
	"wstrust/internal/trust/maximilien"
	"wstrust/internal/workload"
)

// F3 reproduces Figure 3: it regenerates the W3C QoS taxonomy tree from
// the qos package's data, and validates the paper's "multi-faceted"
// characteristic of trust experimentally — with heterogeneous consumer
// preferences, per-facet trust combined under each consumer's own weights
// (Maximilien-Singh policies over the ontology) beats a single overall
// global reputation, because "the overall trust depends on the combination
// of the trusts in each aspect".
func F3(seed int64) (Report, error) {
	// A specialist market: every service is strong on some facets and weak
	// on others, so no single overall ranking fits all consumers — the
	// setting where per-facet trust matters. Both variants are averaged
	// over three independent populations to damp single-draw luck; each
	// (replicate, variant) run owns its Env and RNG streams, so the six
	// runs fan out flat over Populations onto idle suite workers, and the
	// index-addressed merge keeps the report byte-identical to the old
	// sequential replicate loop.
	const reps = 3
	runSingle := func(repSeed int64, specialists []workload.ServiceSpec) (RunResult, error) {
		// Single-aspect: trust develops on response time alone — the consumer
		// judges services by one QoS aspect and nothing else.
		env, err := NewEnv(EnvConfig{
			Seed:           repSeed + int64(len("overall")),
			CustomServices: specialists,
			Consumers:      24,
			Heterogeneity:  0.9,
		})
		if err != nil {
			return RunResult{}, err
		}
		single := beta.New()
		return env.Run(single, RunOptions{
			Rounds: 30, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
			SubmitTo: func(fb core.Feedback) error {
				rt, ok := fb.Ratings[qos.ResponseTime]
				if !ok {
					rt = 0 // failed call
				}
				fb.Ratings = map[core.Facet]float64{core.FacetOverall: rt}
				return single.Submit(fb)
			},
		})
	}
	runFaceted := func(repSeed int64, specialists []workload.ServiceSpec) (RunResult, error) {
		// Multi-faceted: per-facet reputations + per-consumer policy weights.
		env, err := NewEnv(EnvConfig{
			Seed:           repSeed + int64(len("faceted")),
			CustomServices: specialists,
			Consumers:      24,
			Heterogeneity:  0.9,
		})
		if err != nil {
			return RunResult{}, err
		}
		mech := maximilien.New()
		for _, c := range env.Consumers {
			if err := mech.SetPolicy(c.ID, maximilien.Policy{Weights: c.Prefs}); err != nil {
				return RunResult{}, err
			}
		}
		return env.Run(mech, RunOptions{
			Rounds: 30, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
		})
	}

	results := make([]RunResult, reps*2)
	err := Populations(len(results), func(i int) error {
		rep, variant := i/2, i%2
		repSeed := seed + int64(rep)*1000
		specialists := workload.GenerateSpecialists(simclock.Stream(repSeed, "f3-services"), 24, "compute")
		var res RunResult
		var err error
		if variant == 0 {
			res, err = runSingle(repSeed, specialists)
		} else {
			res, err = runFaceted(repSeed, specialists)
		}
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return Report{}, err
	}

	var singleRegrets, facetedRegrets []float64
	var singleHits, facetedHits []float64
	for rep := 0; rep < reps; rep++ {
		singleRegrets = append(singleRegrets, results[rep*2].MeanRegret)
		facetedRegrets = append(facetedRegrets, results[rep*2+1].MeanRegret)
		singleHits = append(singleHits, results[rep*2].HitRate)
		facetedHits = append(facetedHits, results[rep*2+1].HitRate)
	}
	singleRegret, facetedRegret := mean(singleRegrets), mean(facetedRegrets)

	body := qos.RenderTaxonomy() + "\n" + Table([][]string{
		{"trust model", "mean regret", "hit rate"},
		{"single-aspect trust (response time only)", F(singleRegret), F(mean(singleHits))},
		{"multi-faceted + consumer weights", F(facetedRegret), F(mean(facetedHits))},
	})
	pass := facetedRegret < singleRegret
	return Report{
		ID:    "F3",
		Title: "QoS metric taxonomy and multi-faceted trust (Figure 3)",
		PaperClaim: "trust and reputation are built per QoS aspect; the overall trust combines the " +
			"per-facet trusts under the consumer's preferences",
		Body:  body,
		Shape: fmt.Sprintf("multi-faceted regret %.3f < single-aspect %.3f (mean of 3 populations)", facetedRegret, singleRegret),
		Pass:  pass,
		Data: map[string]float64{
			"overall_regret": singleRegret,
			"faceted_regret": facetedRegret,
			"taxonomy_size":  float64(len(qos.Metrics())),
		},
	}, nil
}
