package experiment

import (
	"fmt"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/trust/beta"
	"wstrust/internal/trust/maximilien"
	"wstrust/internal/workload"
)

// F3 reproduces Figure 3: it regenerates the W3C QoS taxonomy tree from
// the qos package's data, and validates the paper's "multi-faceted"
// characteristic of trust experimentally — with heterogeneous consumer
// preferences, per-facet trust combined under each consumer's own weights
// (Maximilien-Singh policies over the ontology) beats a single overall
// global reputation, because "the overall trust depends on the combination
// of the trusts in each aspect".
func F3(seed int64) (Report, error) {
	// A specialist market: every service is strong on some facets and weak
	// on others, so no single overall ranking fits all consumers — the
	// setting where per-facet trust matters. Both variants are averaged
	// over three independent populations to damp single-draw luck.
	var singleRegrets, facetedRegrets []float64
	var singleHits, facetedHits []float64
	for rep := 0; rep < 3; rep++ {
		repSeed := seed + int64(rep)*1000
		specialists := workload.GenerateSpecialists(simclock.Stream(repSeed, "f3-services"), 24, "compute")
		mkEnv := func(tag string) (*Env, error) {
			return NewEnv(EnvConfig{
				Seed:           repSeed + int64(len(tag)),
				CustomServices: specialists,
				Consumers:      24,
				Heterogeneity:  0.9,
			})
		}

		// Single-aspect: trust develops on response time alone — the consumer
		// judges services by one QoS aspect and nothing else.
		envA, err := mkEnv("overall")
		if err != nil {
			return Report{}, err
		}
		single := beta.New()
		resOverall, err := envA.Run(single, RunOptions{
			Rounds: 30, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
			SubmitTo: func(fb core.Feedback) error {
				rt, ok := fb.Ratings[qos.ResponseTime]
				if !ok {
					rt = 0 // failed call
				}
				fb.Ratings = map[core.Facet]float64{core.FacetOverall: rt}
				return single.Submit(fb)
			},
		})
		if err != nil {
			return Report{}, err
		}

		// Multi-faceted: per-facet reputations + per-consumer policy weights.
		envB, err := mkEnv("faceted")
		if err != nil {
			return Report{}, err
		}
		mech := maximilien.New()
		for _, c := range envB.Consumers {
			if err := mech.SetPolicy(c.ID, maximilien.Policy{Weights: c.Prefs}); err != nil {
				return Report{}, err
			}
		}
		resFaceted, err := envB.Run(mech, RunOptions{
			Rounds: 30, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
		})
		if err != nil {
			return Report{}, err
		}
		singleRegrets = append(singleRegrets, resOverall.MeanRegret)
		facetedRegrets = append(facetedRegrets, resFaceted.MeanRegret)
		singleHits = append(singleHits, resOverall.HitRate)
		facetedHits = append(facetedHits, resFaceted.HitRate)
	}
	singleRegret, facetedRegret := mean(singleRegrets), mean(facetedRegrets)

	body := qos.RenderTaxonomy() + "\n" + Table([][]string{
		{"trust model", "mean regret", "hit rate"},
		{"single-aspect trust (response time only)", F(singleRegret), F(mean(singleHits))},
		{"multi-faceted + consumer weights", F(facetedRegret), F(mean(facetedHits))},
	})
	pass := facetedRegret < singleRegret
	return Report{
		ID:    "F3",
		Title: "QoS metric taxonomy and multi-faceted trust (Figure 3)",
		PaperClaim: "trust and reputation are built per QoS aspect; the overall trust combines the " +
			"per-facet trusts under the consumer's preferences",
		Body:  body,
		Shape: fmt.Sprintf("multi-faceted regret %.3f < single-aspect %.3f (mean of 3 populations)", facetedRegret, singleRegret),
		Pass:  pass,
		Data: map[string]float64{
			"overall_regret": singleRegret,
			"faceted_regret": facetedRegret,
			"taxonomy_size":  float64(len(qos.Metrics())),
		},
	}, nil
}
