package experiment

import (
	"fmt"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/soa"
	"wstrust/internal/trust/beta"
	"wstrust/internal/workload"
)

// C10 validates Section 3.1 question 1 — when a trust and reputation
// mechanism should be used. The paper contrasts "selecting a service
// manually at design time by software developers", which is workable but
// frozen, with automatic selection at run time, which "can make the
// fulfillment of a task much easier and faster" in a dynamic environment
// where services fail, degrade, or disappear.
//
// Design-time selection is modelled faithfully: the developer ranks once,
// before deployment, using everything available then (advertised QoS plus
// a short evaluation trial), hard-codes the winner, and the application
// keeps calling it. Run-time selection re-ranks on live reputation every
// call. In a static market the two tie; once providers decay and churn,
// the hard-coded choice rots while the adaptive one re-routes.
func C10(seed int64) (Report, error) {
	type outcome struct {
		static, dynamic float64 // mean regret
	}
	run := func(dynamicMarket bool) (outcome, error) {
		env, err := NewEnv(EnvConfig{
			Seed:      seed,
			Services:  workload.ServiceOptions{N: 16, Category: "compute"},
			Consumers: 12,
		})
		if err != nil {
			return outcome{}, err
		}
		if dynamicMarket {
			// The top-tier services decay after deployment: the best-looking
			// choices at design time are exactly the ones that rot.
			for _, s := range env.Specs {
				if s.Tier != workload.Good {
					continue
				}
				decayed := s.Behavior
				decayed.Alt = qos.Vector{
					qos.ResponseTime: 460, qos.Availability: 0.5,
					qos.Accuracy: 0.2, qos.Throughput: 15,
					qos.Cost: s.Behavior.True[qos.Cost],
				}
				decayed.Dynamics = soa.Decaying
				decayed.Ramp = 10 * RoundDuration
				env.Fabric.Deregister(s.Desc.Service)
				if err := env.Fabric.Register(s.Desc, decayed); err != nil {
					return outcome{}, err
				}
				spec := s
				spec.Behavior = decayed
				env.ReplaceSpec(spec)
			}
		}

		// Design time: the developer runs a short evaluation trial (5 probe
		// calls per candidate) and hard-codes the winner.
		mechTrial := beta.New()
		for _, s := range env.Specs {
			for p := 0; p < 5; p++ {
				res, err := env.Fabric.Invoke("developer", s.Desc.Service, "Trial")
				if err != nil {
					return outcome{}, err
				}
				if err := mechTrial.Submit(core.Feedback{
					Consumer: "developer", Service: s.Desc.Service,
					Provider: s.Desc.Provider, Context: "compute",
					Observed: res.Observation,
					Ratings:  workload.Grade(res.Observation, workload.BasePreferences()),
					At:       env.Clock.Now(),
				}); err != nil {
					return outcome{}, err
				}
			}
		}
		trialEngine := core.NewEngine(mechTrial, env.Rng)
		chosen, _, err := trialEngine.Select("developer", workload.BasePreferences(), env.Candidates("compute"))
		if err != nil {
			return outcome{}, err
		}
		hardcoded := chosen.Service

		// Deployment: 30 rounds. The static application always calls the
		// hard-coded service; the adaptive one re-selects via live
		// reputation. Both experience the same market.
		mechLive := beta.New(beta.WithHalfLife(3 * RoundDuration))
		liveEngine := core.NewEngine(mechLive, env.Rng,
			core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1))
		var staticRegret, dynamicRegret float64
		var n int
		for round := 0; round < 30; round++ {
			for _, c := range env.Consumers {
				best, _ := env.bestFor(c.Prefs, "compute")
				// Static path.
				staticSpec, _ := env.Spec(hardcoded)
				staticSpec.Behavior.True = staticSpec.Behavior.TrueAt(env.Clock.Now())
				staticSpec.Behavior.Dynamics = soa.Static
				staticRegret += best - workload.TrueUtility(staticSpec, c.Prefs)
				// Adaptive path.
				pick, _, err := liveEngine.Select(c.ID, c.Prefs, env.Candidates("compute"))
				if err != nil {
					return outcome{}, err
				}
				pickSpec, _ := env.Spec(pick.Service)
				pickSpec.Behavior.True = pickSpec.Behavior.TrueAt(env.Clock.Now())
				pickSpec.Behavior.Dynamics = soa.Static
				dynamicRegret += best - workload.TrueUtility(pickSpec, c.Prefs)
				n++
				res, err := env.Fabric.Invoke(c.ID, pick.Service, "Execute")
				if err != nil {
					return outcome{}, err
				}
				if err := mechLive.Submit(core.Feedback{
					Consumer: c.ID, Service: pick.Service,
					Provider: pickSpec.Desc.Provider, Context: "compute",
					Observed: res.Observation,
					Ratings:  workload.Grade(res.Observation, c.Prefs),
					At:       env.Clock.Now(),
				}); err != nil {
					return outcome{}, err
				}
			}
			env.Clock.Advance(RoundDuration)
		}
		return outcome{
			static:  staticRegret / float64(n),
			dynamic: dynamicRegret / float64(n),
		}, nil
	}

	staticMarket, err := run(false)
	if err != nil {
		return Report{}, err
	}
	dynamicMarket, err := run(true)
	if err != nil {
		return Report{}, err
	}

	body := Table([][]string{
		{"market", "design-time (hard-coded) regret", "run-time (adaptive) regret"},
		{"static services", F(staticMarket.static), F(staticMarket.dynamic)},
		{"decaying top services", F(dynamicMarket.static), F(dynamicMarket.dynamic)},
	})
	pass := dynamicMarket.dynamic < dynamicMarket.static &&
		dynamicMarket.static > staticMarket.static+0.1 &&
		staticMarket.static < 0.1
	return Report{
		ID:    "C10",
		Title: "Design-time vs run-time selection in a dynamic environment",
		PaperClaim: "manual selection at design time becomes untenable in dynamic environments; " +
			"automatic run-time selection makes task fulfillment easier and faster",
		Body: body,
		Shape: fmt.Sprintf("static market: hard-coded %.3f fine; decaying market: hard-coded rots to %.3f while adaptive holds %.3f",
			staticMarket.static, dynamicMarket.static, dynamicMarket.dynamic),
		Pass: pass,
		Data: map[string]float64{
			"static_market_hardcoded": staticMarket.static,
			"static_market_adaptive":  staticMarket.dynamic,
			"dynamic_hardcoded":       dynamicMarket.static,
			"dynamic_adaptive":        dynamicMarket.dynamic,
		},
	}, nil
}
