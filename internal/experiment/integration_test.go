package experiment

import (
	"fmt"
	"testing"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/monitor"
	"wstrust/internal/p2p"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/sla"
	"wstrust/internal/trust/vu"
	"wstrust/internal/workload"
)

// TestFullStackDecentralizedUnderAttackAndChurn is the kitchen-sink
// integration test: a marketplace with exaggerating providers and a
// badmouthing clique, reputation managed by Vu et al. on a real P-Grid
// with trusted monitors, registry nodes dying mid-run, and a third-party
// monitor feeding the dishonesty detector. The system must keep working:
// selections complete, regret falls, liars lose credibility, and the grid
// answers despite churn.
func TestFullStackDecentralizedUnderAttackAndChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test takes ~1s")
	}
	const seed = 99
	env, err := NewEnv(EnvConfig{
		Seed: seed,
		Services: workload.ServiceOptions{
			N: 18, Category: "compute", ExaggerateFrac: 0.2, Exaggeration: 0.6,
		},
		Consumers:    20,
		LiarFraction: 0.25,
		Attack:       attack.Badmouth{},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Third-party monitor: the trusted agents Vu et al. compare against.
	tp := monitor.NewThirdParty(env.Fabric)
	for _, s := range env.Specs {
		if err := tp.Deploy(s.Desc.Service); err != nil {
			t.Fatal(err)
		}
	}
	tp.ProbeAll() // one calibration sweep before the market opens

	// P-Grid of 32 registry peers.
	gridNet := p2p.NewNetwork()
	ids := make([]p2p.NodeID, 32)
	for i := range ids {
		ids[i] = p2p.NodeID(fmt.Sprintf("reg%02d", i))
	}
	grid, err := p2p.BuildPGrid(gridNet, ids, 3, simclock.Stream(seed, "grid"))
	if err != nil {
		t.Fatal(err)
	}
	mech, err := vu.New(grid, ids, func(id core.ServiceID) (qos.Vector, bool) {
		return tp.TrustedReport(id)
	})
	if err != nil {
		t.Fatal(err)
	}

	killed := 0
	res, err := env.Run(mech, RunOptions{
		Rounds: 24, Category: "compute",
		EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.15)},
		OnRound: func(round int) {
			tp.ProbeAll()
			// Churn: a registry peer dies every 4 rounds (5 total = ~16%).
			if round > 0 && round%4 == 0 && killed < 5 {
				gridNet.Leave(ids[killed])
				killed++
			}
		},
	})
	if err != nil {
		t.Fatalf("full-stack run failed: %v", err)
	}

	// The system works despite everything: steady-state regret stays far
	// below blind choice (~0.34 in this market) and most selections land on
	// good-tier services. (Convergence can be immediate here, so we assert
	// the plateau, not the slope.)
	late := mean(res.RegretSeries[20:])
	if late > 0.15 {
		t.Fatalf("steady-state regret %.3f under attack+churn", late)
	}
	if res.HitRate < 0.6 {
		t.Fatalf("hit rate %.2f under attack+churn", res.HitRate)
	}
	// Dishonesty detection actually fired: a badmouthing liar's credibility
	// is below an honest consumer's.
	var liar, honest core.ConsumerID
	for _, c := range env.Consumers {
		if env.Liars.IsLiar(c.ID) && liar == "" {
			liar = c.ID
		}
		if !env.Liars.IsLiar(c.ID) && honest == "" {
			honest = c.ID
		}
	}
	if lc, hc := mech.Credibility(liar), mech.Credibility(honest); lc >= hc {
		t.Fatalf("monitor comparison did not catch the liar: liar %.2f ≥ honest %.2f", lc, hc)
	}
	if killed != 5 {
		t.Fatalf("churn injection incomplete: killed %d", killed)
	}
	// The grid kept answering: messages kept flowing after churn.
	if gridNet.MessageCount() == 0 {
		t.Fatal("grid carried no traffic")
	}
	// Monitoring cost was accounted.
	if tp.Cost() == 0 || tp.Probes() == 0 {
		t.Fatal("monitor accounting empty")
	}
}

// TestFullStackCentralizedPipeline exercises the centralized spine end to
// end through the public layers: fabric → engine → beta mechanism →
// explorer agents, with an SLA-violating exaggerator in the mix.
func TestFullStackCentralizedPipeline(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed: 7,
		Services: workload.ServiceOptions{
			N: 12, Category: "compute", ExaggerateFrac: 0.25, Exaggeration: 1.2,
		},
		Consumers: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	mech := newSLAMechanism(env, sla.NewLedger())
	res, err := env.Run(mech, RunOptions{
		Rounds: 20, Category: "compute",
		EngineOpts: []core.EngineOption{core.WithAdvertisedFallback(true)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// SLA supervision punishes the heavy exaggerators: final hit rate well
	// above the advertised-only disaster (which is 0 in F2).
	if res.HitRate < 0.5 {
		t.Fatalf("SLA-supervised hit rate %.2f", res.HitRate)
	}
}
