package experiment

import (
	"fmt"
	"math"
	"time"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/p2p"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
	"wstrust/internal/trust/beta"
	"wstrust/internal/trust/eigentrust"
	"wstrust/internal/trust/sporas"
	"wstrust/internal/workload"
)

// The ablations probe the design choices DESIGN.md §5 calls out, beyond
// the paper's own claims: how strong should decay be, how many
// pre-trusted peers does EigenTrust need against a collusion clique, what
// does a newcomer-hostile prior buy against whitewashing, and how much
// replication does the P-Grid need to survive churn.

// A1 sweeps the beta-reputation half-life against an oscillating provider:
// too little decay lags behaviour changes, too much throws information
// away on stable services. It reports the tracking error of a flipping
// service and the score noise on a stable one, per half-life.
func A1(seed int64) (Report, error) {
	halfLives := []time.Duration{0, 12 * RoundDuration, 4 * RoundDuration, 1 * RoundDuration}
	labels := []string{"none", "12 rounds", "4 rounds", "1 round"}
	keys := []string{"none", "12r", "4r", "1r"}

	rows := [][]string{{"half-life", "flip tracking error", "stable-score std-dev"}}
	data := map[string]float64{}
	var flipErrs, stableNoises []float64
	for i, hl := range halfLives {
		clock := simclock.NewVirtual()
		fabric := soa.NewFabric(clock, simclock.Stream(seed, "a1-"+labels[i]), soa.NewUDDI())
		good := qosVectorGood()
		bad := qosVectorBad()
		if err := fabric.Register(flipDesc("s-flip"), soa.Behavior{
			True: good, Alt: bad, Dynamics: soa.Oscillating,
			Period: 10 * RoundDuration, Jitter: 0.05,
		}); err != nil {
			return Report{}, err
		}
		if err := fabric.Register(flipDesc("s-stable"), soa.Behavior{
			True: good, Jitter: 0.05,
		}); err != nil {
			return Report{}, err
		}
		var mech core.Mechanism
		if hl == 0 {
			mech = beta.New()
		} else {
			mech = beta.New(beta.WithHalfLife(hl))
		}
		consumers := workload.GenerateConsumers(simclock.Stream(seed, "a1c"), 5, 0)
		var flipErr float64
		var flipN int
		var stableScores []float64
		for round := 0; round < 40; round++ {
			for _, c := range consumers {
				for _, svc := range []core.ServiceID{"s-flip", "s-stable"} {
					res, err := fabric.Invoke(c.ID, svc, "Execute")
					if err != nil {
						return Report{}, err
					}
					if err := mech.Submit(core.Feedback{
						Consumer: c.ID, Service: svc, Context: "compute",
						Observed: res.Observation,
						Ratings:  workload.Grade(res.Observation, c.Prefs),
						At:       clock.Now(),
					}); err != nil {
						return Report{}, err
					}
				}
			}
			if round >= 10 {
				behavior, _ := fabric.Behavior("s-flip")
				truth := workload.TrueUtility(workload.ServiceSpec{
					Behavior: soa.Behavior{True: behavior.TrueAt(clock.Now())},
				}, workload.BasePreferences())
				tv, _ := mech.Score(core.Query{Subject: "s-flip", Context: "compute", Facet: core.FacetOverall})
				flipErr += abs(tv.Score - truth)
				flipN++
				sv, _ := mech.Score(core.Query{Subject: "s-stable", Context: "compute", Facet: core.FacetOverall})
				stableScores = append(stableScores, sv.Score)
			}
			clock.Advance(RoundDuration)
		}
		fe := flipErr / float64(flipN)
		sn := stddev(stableScores)
		flipErrs = append(flipErrs, fe)
		stableNoises = append(stableNoises, sn)
		rows = append(rows, []string{labels[i], F(fe), F(sn)})
		data["flip_"+keys[i]] = fe
		data["stable_"+keys[i]] = sn
	}
	// Shape: decay reduces flip error monotonically with shorter half-life,
	// but stable-score noise grows — the classic bias/variance trade.
	pass := flipErrs[3] < flipErrs[0] && stableNoises[3] > stableNoises[0]
	return Report{
		ID:    "A1",
		Title: "Ablation: decay half-life (tracking vs stability)",
		PaperClaim: "decay makes trust dynamic; the ablation quantifies the cost — stronger decay tracks " +
			"behaviour changes faster but makes stable reputations noisier",
		Body: Table(rows),
		Shape: fmt.Sprintf("flip error %.3f→%.3f as decay strengthens; stable noise %.3f→%.3f",
			flipErrs[0], flipErrs[3], stableNoises[0], stableNoises[3]),
		Pass: pass,
		Data: data,
	}, nil
}

// A2 sweeps EigenTrust's pre-trusted set size against a collusion clique
// that rates itself highly: with no anchors the clique can dominate the
// principal eigenvector; a few pre-trusted peers contain it.
func A2(seed int64) (Report, error) {
	sizes := []int{0, 1, 3, 5}
	rows := [][]string{{"pre-trusted peers", "honest service score", "clique member score"}}
	data := map[string]float64{}
	var cliqueAt0, cliqueAtMax float64
	for _, n := range sizes {
		honest := make([]core.ConsumerID, 10)
		for i := range honest {
			honest[i] = core.NewConsumerID(i + 1)
		}
		var opts []eigentrust.Option
		if n > 0 {
			pre := make([]core.EntityID, n)
			for i := 0; i < n; i++ {
				pre[i] = honest[i]
			}
			opts = append(opts, eigentrust.WithPreTrusted(pre...))
		}
		m := eigentrust.New(opts...)
		// Honest consumers rate the honest service; a 6-peer clique rates
		// itself in a dense cycle, massively outweighing the honest edges.
		clique := make([]core.EntityID, 6)
		for i := range clique {
			clique[i] = core.EntityID(fmt.Sprintf("liar-%d", i))
		}
		at := simclock.Epoch
		for round := 0; round < 5; round++ {
			for _, c := range honest {
				_ = m.Submit(core.Feedback{
					Consumer: c, Service: "s-honest",
					Ratings: map[core.Facet]float64{core.FacetOverall: 1}, At: at,
				})
			}
			for i, a := range clique {
				for j, b := range clique {
					if i == j {
						continue
					}
					_ = m.Submit(core.Feedback{
						Consumer: a, Service: b,
						Ratings: map[core.Facet]float64{core.FacetOverall: 1}, At: at,
					})
				}
			}
			at = at.Add(time.Hour)
		}
		m.Tick(at)
		hv, _ := m.Score(core.Query{Subject: "s-honest"})
		cv, _ := m.Score(core.Query{Subject: clique[0]})
		rows = append(rows, []string{fmt.Sprintf("%d", n), F(hv.Score), F(cv.Score)})
		data[fmt.Sprintf("honest_%d", n)] = hv.Score
		data[fmt.Sprintf("clique_%d", n)] = cv.Score
		if n == 0 {
			cliqueAt0 = cv.Score
		}
		if n == sizes[len(sizes)-1] {
			cliqueAtMax = cv.Score
		}
	}
	pass := cliqueAtMax < cliqueAt0 && data[fmt.Sprintf("honest_%d", sizes[len(sizes)-1])] > cliqueAtMax
	return Report{
		ID:    "A2",
		Title: "Ablation: EigenTrust pre-trusted peers vs a collusion clique",
		PaperClaim: "EigenTrust's teleport to pre-trusted peers is its anchor against malicious " +
			"collectives; the ablation shows the clique's score collapsing as anchors are added",
		Body: Table(rows),
		Shape: fmt.Sprintf("clique score %.3f with 0 anchors → %.3f with %d; honest service ends above it",
			cliqueAt0, cliqueAtMax, sizes[len(sizes)-1]),
		Pass: pass,
		Data: data,
	}, nil
}

// A3 pits newcomer policies against whitewashing: Sporas starts newcomers
// at the bottom (re-entry buys nothing), the beta prior starts them
// neutral (re-entry erases a bad record). A chronically bad service that
// resets its identity every 5 ratings keeps a much better score under the
// neutral prior.
func A3(seed int64) (Report, error) {
	run := func(mech core.Mechanism) (float64, error) {
		w := attack.NewWhitewasher(attack.Honest{}, 5)
		at := simclock.Epoch
		// The service is genuinely bad: honest ratings ≈ 0.15. The
		// whitewasher here is the SERVICE's identity, so we model it as the
		// subject id rotating: each generation the bad actor re-registers
		// under a fresh name. Raters are honest.
		var lastID core.EntityID
		for i := 0; i < 60; i++ {
			// Identity the bad actor currently trades under.
			ident := core.EntityID(w.IdentityOf("bad-provider"))
			lastID = ident
			_ = mech.Submit(core.Feedback{
				Consumer: core.NewConsumerID(i%10 + 1),
				Service:  ident,
				Ratings:  map[core.Facet]float64{core.FacetOverall: 0.15},
				At:       at,
			})
			at = at.Add(time.Hour)
		}
		// The score a consumer sees for the bad actor's CURRENT identity
		// right after its latest reset-and-rebuild cycle started.
		tv, known := mech.Score(core.Query{Subject: lastID})
		if !known {
			return 0.5, nil
		}
		return tv.Score, nil
	}
	betaScore, err := run(beta.New())
	if err != nil {
		return Report{}, err
	}
	sporasScore, err := run(sporas.New(sporas.WithTheta(3)))
	if err != nil {
		return Report{}, err
	}
	rows := [][]string{
		{"newcomer policy", "whitewashed identity's score"},
		{"beta (neutral prior 0.5)", F(betaScore)},
		{"sporas (newcomers start at 0)", F(sporasScore)},
	}
	pass := sporasScore < betaScore
	return Report{
		ID:    "A3",
		Title: "Ablation: newcomer policy vs whitewashing",
		PaperClaim: "identity reset defeats mechanisms whose newcomers start neutral; Sporas' " +
			"start-at-the-bottom rule makes re-entry worthless",
		Body: Table(rows),
		Shape: fmt.Sprintf("whitewashed score: sporas %.3f < beta %.3f — the bottom-start rule removes the incentive",
			sporasScore, betaScore),
		Pass: pass,
		Data: map[string]float64{"beta": betaScore, "sporas": sporasScore},
	}, nil
}

// A4 measures P-Grid resilience: lookup success of stored reputation
// records as an increasing fraction of peers fails, for 1-vs-3-bit tries
// over the same 32 peers (more bits = fewer replicas per leaf).
func A4(seed int64) (Report, error) {
	fractions := []float64{0, 0.25, 0.5}
	rows := [][]string{{"failed peers", "success (4 replicas/leaf)", "success (16 replicas/leaf)"}}
	data := map[string]float64{}
	for _, frac := range fractions {
		row := []string{F(frac)}
		for _, bits := range []int{3, 1} {
			net := p2p.NewNetwork()
			ids := make([]p2p.NodeID, 32)
			for i := range ids {
				ids[i] = p2p.NodeID(fmt.Sprintf("n%02d", i))
			}
			g, err := p2p.BuildPGrid(net, ids, bits, simclock.Stream(seed, fmt.Sprintf("a4-%d-%g", bits, frac)))
			if err != nil {
				return Report{}, err
			}
			const keys = 40
			for k := 0; k < keys; k++ {
				if _, err := g.Store(ids[k%len(ids)], fmt.Sprintf("rep-%d", k), k); err != nil {
					return Report{}, err
				}
			}
			// Fail a deterministic fraction of peers.
			rng := simclock.Stream(seed, fmt.Sprintf("a4kill-%d-%g", bits, frac))
			perm := rng.Perm(len(ids))
			for i := 0; i < int(frac*float64(len(ids))); i++ {
				net.Leave(ids[perm[i]])
			}
			ok := 0
			for k := 0; k < keys; k++ {
				// Query from a surviving peer.
				var origin p2p.NodeID
				for _, cand := range ids {
					if net.Alive(cand) {
						origin = cand
						break
					}
				}
				vals, err := g.Lookup(origin, fmt.Sprintf("rep-%d", k))
				if err == nil && len(vals) > 0 {
					ok++
				}
			}
			rate := float64(ok) / keys
			row = append(row, F(rate))
			data[fmt.Sprintf("bits%d_frac%g", bits, frac)] = rate
		}
		rows = append(rows, row)
	}
	pass := data["bits1_frac0.5"] >= data["bits3_frac0.5"] &&
		data["bits3_frac0"] == 1 && data["bits1_frac0"] == 1
	return Report{
		ID:    "A4",
		Title: "Ablation: P-Grid replication vs churn",
		PaperClaim: "the P-Grid's replicas keep reputation data available under churn; fewer replicas " +
			"per leaf (deeper tries) trade resilience for smaller shards",
		Body: Table(rows),
		Shape: fmt.Sprintf("at 50%% failed peers: 16-replica leaves answer %.0f%%, 4-replica leaves %.0f%%",
			100*data["bits1_frac0.5"], 100*data["bits3_frac0.5"]),
		Pass: pass,
		Data: data,
	}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var sq float64
	for _, x := range xs {
		sq += (x - m) * (x - m)
	}
	return math.Sqrt(sq / float64(len(xs)-1))
}

func qosVectorGood() qos.Vector {
	return qos.Vector{
		qos.ResponseTime: 90, qos.Availability: 0.99,
		qos.Accuracy: 0.92, qos.Throughput: 85, qos.Cost: 5,
	}
}

func qosVectorBad() qos.Vector {
	return qos.Vector{
		qos.ResponseTime: 450, qos.Availability: 0.55,
		qos.Accuracy: 0.2, qos.Throughput: 15, qos.Cost: 5,
	}
}

func flipDesc(id core.ServiceID) soa.Description {
	return soa.Description{
		Service: id, Provider: "p001", Name: string(id), Category: "compute",
		Operations: []soa.Operation{{Name: "Execute"}},
	}
}
