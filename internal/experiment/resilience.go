package experiment

import (
	"fmt"

	"wstrust/internal/core"
	"wstrust/internal/fault"
	"wstrust/internal/qos"
	"wstrust/internal/soa"
	"wstrust/internal/workload"
)

// The resilience experiments R1–R4 price the survey's Section-5 warning
// about decentralized reputation — "a lot of communication and
// calculation" — under the failures that communication actually suffers:
// message loss (R1), node churn (R2), registry outages (R3), and the
// retry policy that buys accuracy back with extra traffic (R4). Every run
// is an independent seeded simulation; the centralized eBay baseline rides
// along as a control that must not move, since it touches no network.

// resilienceNames is the mechanism subset the resilience experiments run:
// every decentralized mechanism plus the centralized control.
var resilienceNames = []string{
	"ebay", // centralized control: no p2p substrate, must be fault-invariant
	"eigentrust", "peertrust", "complaints", "yu-singh", "xrep",
	"wang-vassileva", "vu-qos",
}

// resilienceBuilders returns the subset's builders in subset order.
func resilienceBuilders(names []string) []MechanismBuilder {
	byName := map[string]MechanismBuilder{}
	for _, b := range AllMechanisms() {
		byName[b.Name] = b
	}
	out := make([]MechanismBuilder, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out
}

// resilienceRounds keeps the fault sweeps affordable: the regime shows up
// well before the F4 horizon.
const resilienceRounds = 16

// resilienceRun drives one mechanism through one fault regime on a fresh
// marketplace.
func resilienceRun(seed int64, b MechanismBuilder, p fault.Profile) (RunResult, *Env, error) {
	env, err := NewEnv(EnvConfig{
		Seed:      seed,
		Services:  workload.ServiceOptions{N: 16, Category: "compute"},
		Consumers: 12,
		Faults:    &p,
	})
	if err != nil {
		return RunResult{}, nil, err
	}
	mech, err := b.Build(env)
	if err != nil {
		return RunResult{}, nil, fmt.Errorf("resilience: build %s: %w", b.Name, err)
	}
	res, err := env.Run(mech, RunOptions{
		Rounds: resilienceRounds, Category: "compute",
		EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
	})
	if err != nil {
		return RunResult{}, nil, fmt.Errorf("resilience: run %s under %s: %w", b.Name, p.String(), err)
	}
	return res, env, nil
}

// R1 sweeps the message drop rate from 0 to 30% with the default retry
// policy on, for every decentralized mechanism against the centralized
// control.
func R1(seed int64) (Report, error) {
	rates := []float64{0, 0.05, 0.10, 0.20, 0.30}
	profileFor := func(rate float64) fault.Profile {
		if rate == 0 {
			return fault.Profile{} // the perfect substrate, injector-free
		}
		return fault.Profile{Name: "drop", DropRate: rate, Retry: fault.DefaultPolicy()}
	}

	header := []string{"mechanism"}
	for _, r := range rates {
		header = append(header, fmt.Sprintf("regret@%g%%", r*100))
	}
	header = append(header, "lost@30%", "msgs@30%")
	rows := [][]string{header}
	data := map[string]float64{}

	var meanClean, meanWorst float64
	var ebayRegrets []float64
	decentralized := 0
	for _, b := range resilienceBuilders(resilienceNames) {
		row := []string{b.Name}
		var lost, msgs int64
		for _, rate := range rates {
			res, env, err := resilienceRun(seed, b, profileFor(rate))
			if err != nil {
				return Report{}, err
			}
			row = append(row, F(res.MeanRegret))
			data[fmt.Sprintf("%s_drop%g", b.Name, rate)] = res.MeanRegret
			if b.Name == "ebay" {
				ebayRegrets = append(ebayRegrets, res.MeanRegret)
				continue
			}
			switch rate {
			case 0:
				meanClean += res.MeanRegret
			case 0.30:
				meanWorst += res.MeanRegret
				lost = env.FaultStats().Lost()
				msgs = res.Messages
			}
		}
		if b.Name != "ebay" {
			decentralized++
		}
		rows = append(rows, append(row, FI(lost), FI(msgs)))
	}
	meanClean /= float64(decentralized)
	meanWorst /= float64(decentralized)
	data["mean_clean"] = meanClean
	data["mean_drop30"] = meanWorst

	ebayFlat := true
	for _, r := range ebayRegrets[1:] {
		if r != ebayRegrets[0] {
			ebayFlat = false
		}
	}
	pass := ebayFlat && meanWorst > meanClean

	return Report{
		ID:    "R1",
		Title: "resilience: message loss sweep (0→30% drop, retry on)",
		PaperClaim: "decentralized reputation depends on communication that can fail; " +
			"lost messages degrade selection while a centralized registry is unaffected",
		Body: Table(rows),
		Shape: fmt.Sprintf("mean decentralized regret grows %.3f→%.3f from 0%% to 30%% drop; "+
			"centralized ebay is byte-invariant across rates (%v)",
			meanClean, meanWorst, ebayFlat),
		Pass: pass,
		Data: data,
	}, nil
}

// R2 sweeps node churn on the structured and unstructured P2P substrates:
// peers suspend and rejoin with state intact, P-Grid routes are repaired
// and overlays re-wired after every membership change.
func R2(seed int64) (Report, error) {
	churns := []float64{0, 0.05, 0.15}
	names := []string{"ebay", "complaints", "vu-qos", "yu-singh", "xrep"}
	profileFor := func(rate float64) fault.Profile {
		if rate == 0 {
			return fault.Profile{}
		}
		return fault.Profile{Name: "churn", ChurnRate: rate, RejoinRate: 0.5, Retry: fault.DefaultPolicy()}
	}

	header := []string{"mechanism"}
	for _, c := range churns {
		header = append(header, fmt.Sprintf("regret@churn=%g", c))
	}
	header = append(header, "peerDowns@0.15")
	rows := [][]string{header}
	data := map[string]float64{}

	var meanStable, meanChurny float64
	var downTotal int64
	var ebayRegrets []float64
	p2pCount := 0
	for _, b := range resilienceBuilders(names) {
		row := []string{b.Name}
		var downs int64
		for _, rate := range churns {
			res, env, err := resilienceRun(seed, b, profileFor(rate))
			if err != nil {
				return Report{}, err
			}
			row = append(row, F(res.MeanRegret))
			data[fmt.Sprintf("%s_churn%g", b.Name, rate)] = res.MeanRegret
			if b.Name == "ebay" {
				ebayRegrets = append(ebayRegrets, res.MeanRegret)
				continue
			}
			switch rate {
			case 0:
				meanStable += res.MeanRegret
			case 0.15:
				meanChurny += res.MeanRegret
				downs, _ = env.ChurnStats()
				downTotal += downs
			}
		}
		if b.Name != "ebay" {
			p2pCount++
		}
		rows = append(rows, append(row, FI(downs)))
	}
	meanStable /= float64(p2pCount)
	meanChurny /= float64(p2pCount)
	data["mean_stable"] = meanStable
	data["mean_churn15"] = meanChurny
	data["peer_downs"] = float64(downTotal)

	ebayFlat := true
	for _, r := range ebayRegrets[1:] {
		if r != ebayRegrets[0] {
			ebayFlat = false
		}
	}
	// The survey expects churn to hurt; what the repair machinery (route
	// repair, re-wiring, state-preserving rejoin, local fallbacks) buys is
	// that it barely does: accuracy stays within a small band of the
	// stable substrate even with peers toggling every round.
	pass := ebayFlat && downTotal > 0 && meanChurny <= meanStable+0.02

	return Report{
		ID:    "R2",
		Title: "resilience: node churn with route repair and overlay re-wiring",
		PaperClaim: "P2P substrates lose peers mid-operation; route repair, re-wiring and " +
			"cached fallbacks must absorb the loss for selection to keep working",
		Body: Table(rows),
		Shape: fmt.Sprintf("%d peer suspensions at 15%% churn/round, yet mean P2P regret moves "+
			"only %.3f→%.3f; ebay flat (%v)",
			downTotal, meanStable, meanChurny, ebayFlat),
		Pass: pass,
		Data: data,
	}, nil
}

// r3Star is the service published mid-run in R3: clearly the best in the
// market, so discovering it late is visible as regret.
func r3Star() workload.ServiceSpec {
	great := qos.Vector{
		qos.ResponseTime: 55, qos.Availability: 0.995,
		qos.Accuracy: 0.97, qos.Throughput: 96, qos.Cost: 5,
	}
	return workload.ServiceSpec{
		Desc: soa.Description{
			Service: "s-star", Provider: "p-star", Name: "late star", Category: "compute",
			Operations: []soa.Operation{{Name: "Execute"}}, Advertised: great.Clone(),
		},
		Behavior: soa.Behavior{True: great, Jitter: 0.05},
		Tier:     workload.Good,
	}
}

// R3 takes the service registry down for rounds 6–12 while a strictly
// better service is published at round 8: consumers keep selecting from
// their stale cached catalog (graceful degradation, no errors), but they
// cannot discover the newcomer until the registry returns.
func R3(seed int64) (Report, error) {
	const pubRound = 8
	window := fault.Window{From: 6, To: 12}
	run := func(b MechanismBuilder, outage bool) (RunResult, int, error) {
		p := fault.Profile{}
		if outage {
			p = fault.Profile{Name: "outage", Outages: []fault.Window{window}}
		}
		env, err := NewEnv(EnvConfig{
			Seed:      seed,
			Services:  workload.ServiceOptions{N: 16, Category: "compute"},
			Consumers: 12,
			Faults:    &p,
		})
		if err != nil {
			return RunResult{}, -1, err
		}
		mech, err := b.Build(env)
		if err != nil {
			return RunResult{}, -1, err
		}
		firstSeen := -1
		res, err := env.Run(mech, RunOptions{
			Rounds: 20, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
			OnRound: func(round int) {
				if round == pubRound {
					star := r3Star()
					if err := env.Fabric.Register(star.Desc, star.Behavior); err != nil {
						panic(err) // fresh id on a fresh fabric; cannot collide
					}
					env.AddSpec(star)
				}
				// Discovery probe: the round the newcomer first shows up
				// in the candidate set consumers select from.
				if firstSeen < 0 {
					for _, c := range env.Candidates("compute") {
						if c.Service == "s-star" {
							firstSeen = round
							break
						}
					}
				}
			},
		})
		return res, firstSeen, err
	}

	rows := [][]string{{"mechanism", "regret(no outage)", "regret(outage)", "seen(no outage)", "seen(outage)"}}
	data := map[string]float64{}
	pass := true
	for _, b := range resilienceBuilders([]string{"ebay", "complaints"}) {
		clean, seenClean, err := run(b, false)
		if err != nil {
			return Report{}, err
		}
		outage, seenOutage, err := run(b, true)
		if err != nil {
			return Report{}, fmt.Errorf("r3: outage run must degrade gracefully, not fail: %w", err)
		}
		rows = append(rows, []string{
			b.Name, F(clean.MeanRegret), F(outage.MeanRegret),
			FI(int64(seenClean)), FI(int64(seenOutage)),
		})
		data[b.Name+"_clean"] = clean.MeanRegret
		data[b.Name+"_outage"] = outage.MeanRegret
		data[b.Name+"_seen_clean"] = float64(seenClean)
		data[b.Name+"_seen_outage"] = float64(seenOutage)
		// The structural claim, independent of selection noise: with the
		// registry up the newcomer is visible the round it is published;
		// during an outage the stale catalog hides it until the window
		// closes — and selection keeps running off the cache either way.
		if seenClean != pubRound || seenOutage != window.To {
			pass = false
		}
	}

	return Report{
		ID:    "R3",
		Title: "resilience: registry outage with stale-catalog fallback",
		PaperClaim: "when discovery fails, consumers degrade to cached knowledge: selection " +
			"continues uninterrupted but newly published services stay invisible until recovery",
		Body: Table(rows),
		Shape: fmt.Sprintf("outage runs complete without error on the stale catalog; the service "+
			"published at round %d is visible at round %.0f with the registry up but only at "+
			"round %.0f (outage end) during the outage",
			pubRound, data["ebay_seen_clean"], data["ebay_seen_outage"]),
		Pass: pass,
		Data: data,
	}, nil
}

// R4 ablates the retry policy at a fixed 15% drop rate: more attempts buy
// selection accuracy back, and the bill arrives as message traffic.
func R4(seed int64) (Report, error) {
	attempts := []int{1, 2, 4}
	names := []string{"eigentrust", "complaints", "xrep", "vu-qos"}
	profileFor := func(n int) fault.Profile {
		p := fault.Profile{Name: "drop", DropRate: 0.15, Retry: fault.DefaultPolicy()}
		p.Retry.MaxAttempts = n
		return p
	}

	header := []string{"mechanism"}
	for _, n := range attempts {
		header = append(header, fmt.Sprintf("regret@%d", n), fmt.Sprintf("msgs@%d", n))
	}
	rows := [][]string{header}
	data := map[string]float64{}

	var regretNoRetry, regretRetry float64
	var msgsNoRetry, msgsRetry float64
	for _, b := range resilienceBuilders(names) {
		row := []string{b.Name}
		for _, n := range attempts {
			res, _, err := resilienceRun(seed, b, profileFor(n))
			if err != nil {
				return Report{}, err
			}
			row = append(row, F(res.MeanRegret), FI(res.Messages))
			data[fmt.Sprintf("%s_regret@%d", b.Name, n)] = res.MeanRegret
			data[fmt.Sprintf("%s_msgs@%d", b.Name, n)] = float64(res.Messages)
			switch n {
			case 1:
				regretNoRetry += res.MeanRegret
				msgsNoRetry += float64(res.Messages)
			case 4:
				regretRetry += res.MeanRegret
				msgsRetry += float64(res.Messages)
			}
		}
		rows = append(rows, row)
	}
	n := float64(len(names))
	regretNoRetry, regretRetry = regretNoRetry/n, regretRetry/n
	data["mean_regret_attempts1"] = regretNoRetry
	data["mean_regret_attempts4"] = regretRetry
	data["mean_msgs_attempts1"] = msgsNoRetry / n
	data["mean_msgs_attempts4"] = msgsRetry / n

	pass := regretRetry <= regretNoRetry && msgsRetry > msgsNoRetry

	return Report{
		ID:    "R4",
		Title: "resilience: retry-policy ablation at 15% drop",
		PaperClaim: "bounded retries with exponential virtual-time backoff recover most " +
			"accuracy lost to message drops — paid for in extra traffic",
		Body: Table(rows),
		Shape: fmt.Sprintf("mean regret %.3f with 1 attempt → %.3f with 4; mean messages %.0f → %.0f",
			regretNoRetry, regretRetry, msgsNoRetry/n, msgsRetry/n),
		Pass: pass,
		Data: data,
	}, nil
}
