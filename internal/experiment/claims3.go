package experiment

import (
	"fmt"

	"wstrust/internal/core"
	"wstrust/internal/monitor"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
	"wstrust/internal/trust/beta"
	"wstrust/internal/trust/subjective"
	"wstrust/internal/workload"
)

// C7 validates the Section-5 direction "trust and reputation mechanisms
// for web service providers rather than just for web services": after a
// market with provider portfolios has been learned, a brand-new service
// from a reputable provider should be preferred over an equally unknown
// service from a disreputable one — but only when the engine bootstraps
// from provider reputation.
func C7(seed int64) (Report, error) {
	result := map[bool]float64{} // bootstrap → share of picks on good-provider newcomer
	var rankedFirst map[bool]bool = map[bool]bool{}
	for _, bootstrap := range []bool{false, true} {
		env, err := NewEnv(EnvConfig{
			Seed: seed,
			Services: workload.ServiceOptions{
				N: 16, Category: "compute", PortfolioSize: 4,
			},
			Consumers: 20,
		})
		if err != nil {
			return Report{}, err
		}
		mech := beta.New()
		opts := []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)}
		if bootstrap {
			opts = append(opts, core.WithProviderBootstrap(true))
		}
		// Phase 1: learn the market (providers p001/p002 good-tier
		// portfolios, p003/p004 bad-tier, by generation order).
		if _, err := env.Run(mech, RunOptions{Rounds: 20, Category: "compute", EngineOpts: opts}); err != nil {
			return Report{}, err
		}
		// Phase 2: two identical-truth newcomers, one per provider
		// reputation extreme. Identical truth isolates the provider signal.
		truth := qos.Vector{
			qos.ResponseTime: 120, qos.Availability: 0.97,
			qos.Accuracy: 0.9, qos.Throughput: 80, qos.Cost: 5,
		}
		mk := func(id core.ServiceID, provider core.ProviderID) workload.ServiceSpec {
			return workload.ServiceSpec{
				Desc: soa.Description{
					Service: id, Provider: provider, Name: string(id), Category: "compute",
					Operations: []soa.Operation{{Name: "Execute"}},
					Advertised: truth.Clone(),
				},
				Behavior: soa.Behavior{True: truth.Clone(), Jitter: 0.05},
				Tier:     workload.Good,
			}
		}
		// Identify the best and worst providers by portfolio oracle utility.
		provSum, provN := map[core.ProviderID]float64{}, map[core.ProviderID]float64{}
		for _, s := range env.Specs {
			provSum[s.Desc.Provider] += workload.TrueUtility(s, workload.BasePreferences())
			provN[s.Desc.Provider]++
		}
		var goodProv, badProv core.ProviderID
		bestU, worstU := -1.0, 2.0
		for _, s := range env.Specs {
			p := s.Desc.Provider
			u := provSum[p] / provN[p]
			if u > bestU {
				bestU, goodProv = u, p
			}
			if u < worstU {
				worstU, badProv = u, p
			}
		}
		newGood := mk("s-new-good", goodProv)
		newBad := mk("s-new-bad", badProv)
		for _, s := range []workload.ServiceSpec{newGood, newBad} {
			if err := env.Fabric.Register(s.Desc, s.Behavior); err != nil {
				return Report{}, err
			}
			env.AddSpec(s)
		}
		// Immediate ranking of just the two newcomers.
		engine := core.NewEngine(mech, simclock.Stream(seed, fmt.Sprintf("c7-%v", bootstrap)), opts...)
		ranked := engine.Rank(env.Consumers[0].ID, env.Consumers[0].Prefs,
			[]core.Candidate{newGood.Desc.Candidate(), newBad.Desc.Candidate()})
		rankedFirst[bootstrap] = ranked[0].Service == "s-new-good" && ranked[0].Score > ranked[1].Score

		// Short follow-up phase: count picks among the two newcomers.
		picks := map[core.ServiceID]int{}
		for round := 0; round < 5; round++ {
			for _, c := range env.Consumers {
				chosen, _, err := engine.Select(c.ID, c.Prefs,
					[]core.Candidate{newGood.Desc.Candidate(), newBad.Desc.Candidate()})
				if err != nil {
					return Report{}, err
				}
				picks[chosen.Service]++
				res, err := env.Fabric.Invoke(c.ID, chosen.Service, "Execute")
				if err != nil {
					return Report{}, err
				}
				spec, _ := env.Spec(chosen.Service)
				if err := mech.Submit(core.Feedback{
					Consumer: c.ID, Service: chosen.Service, Provider: spec.Desc.Provider,
					Context: "compute", Observed: res.Observation,
					Ratings: workload.Grade(res.Observation, c.Prefs), At: env.Clock.Now(),
				}); err != nil {
					return Report{}, err
				}
			}
			env.Clock.Advance(RoundDuration)
		}
		result[bootstrap] = float64(picks["s-new-good"]) / float64(picks["s-new-good"]+picks["s-new-bad"])
	}

	body := Table([][]string{
		{"provider bootstrap", "newcomer from good provider ranked first", "share of picks"},
		{"off", fmt.Sprintf("%v", rankedFirst[false]), F(result[false])},
		{"on", fmt.Sprintf("%v", rankedFirst[true]), F(result[true])},
	})
	pass := rankedFirst[true] && !rankedFirst[false] && result[true] > result[false]
	return Report{
		ID:    "C7",
		Title: "Provider reputation bootstraps new services (cold start)",
		PaperClaim: "for a new service, the provider's reputation accumulated from its other services can " +
			"be used: a good provider's new service is believed to be good too",
		Body: body,
		Shape: fmt.Sprintf("with bootstrap the reputable provider's newcomer is preferred (%.0f%% of picks vs %.0f%% without)",
			100*result[true], 100*result[false]),
		Pass: pass,
		Data: map[string]float64{
			"share_with_bootstrap":    result[true],
			"share_without_bootstrap": result[false],
		},
	}, nil
}

// C8 validates the Section-3 transitivity claim via Jøsang's operators:
// trust propagates along referral chains (Alice → doctor → specialist) but
// each hop through an imperfect advisor discounts certainty, so usable
// trust decays with chain length.
func C8(seed int64) (Report, error) {
	// Advisors are trusted from 10 positive / 1 negative interactions; the
	// final advisor holds strong positive evidence about the subject.
	link := subjective.FromEvidence(10, 1)
	subjectOpinion := subjective.FromEvidence(18, 2)
	rows := [][]string{{"chain depth", "derived expectation", "uncertainty", "confidence"}}
	data := map[string]float64{}
	prevU := -1.0
	monotone := true
	var expectations []float64
	for depth := 1; depth <= 6; depth++ {
		chain := make([]subjective.Opinion, depth)
		for i := 0; i < depth-1; i++ {
			chain[i] = link
		}
		chain[depth-1] = subjectOpinion
		derived := subjective.ChainDiscount(chain...)
		tv := derived.TrustValue()
		rows = append(rows, []string{
			fmt.Sprintf("%d", depth), F(derived.Expectation()), F(derived.U), F(tv.Confidence),
		})
		data[fmt.Sprintf("expectation_%d", depth)] = derived.Expectation()
		data[fmt.Sprintf("uncertainty_%d", depth)] = derived.U
		if derived.U < prevU {
			monotone = false
		}
		prevU = derived.U
		expectations = append(expectations, derived.Expectation())
	}
	// Trust transits: even at depth 3 the expectation stays clearly above
	// the 0.5 prior; but certainty decays monotonically.
	pass := monotone && expectations[2] > 0.6 && expectations[0] > expectations[5]
	return Report{
		ID:    "C8",
		Title: "Trust transitivity with per-hop discounting",
		PaperClaim: "trust can be transitive: Alice trusts her doctor, the doctor trusts a specialist, " +
			"so Alice can trust the specialist — with diminishing force along the chain",
		Body: Table(rows),
		Shape: fmt.Sprintf("expectation %.3f at depth 1 → %.3f at depth 6; uncertainty rises monotonically",
			expectations[0], expectations[5]),
		Pass: pass,
		Data: data,
	}, nil
}

// C9 validates the explorer-agent story of Section 2 (Maximilien & Singh
// [19]): a service that earned a bad reputation and then improved is never
// re-tried by greedy reputation-guided consumers — unless explorer agents
// keep probing negative-reputation services and refresh their records.
func C9(seed int64) (Report, error) {
	run := func(withExplorer bool) (float64, error) {
		env, err := NewEnv(EnvConfig{
			Seed:      seed,
			Services:  workload.ServiceOptions{N: 12, Category: "compute"},
			Consumers: 15,
		})
		if err != nil {
			return 0, err
		}
		// s-phoenix starts bad and becomes the best service after 8 rounds.
		bad := qos.Vector{
			qos.ResponseTime: 460, qos.Availability: 0.55,
			qos.Accuracy: 0.2, qos.Throughput: 15, qos.Cost: 5,
		}
		great := qos.Vector{
			qos.ResponseTime: 60, qos.Availability: 0.995,
			qos.Accuracy: 0.97, qos.Throughput: 95, qos.Cost: 5,
		}
		phoenix := workload.ServiceSpec{
			Desc: soa.Description{
				Service: "s-phoenix", Provider: "p-phx", Name: "phoenix", Category: "compute",
				Operations: []soa.Operation{{Name: "Execute"}}, Advertised: bad.Clone(),
			},
			Behavior: soa.Behavior{
				True: great, Alt: bad, Dynamics: soa.Improving,
				Ramp: 8 * RoundDuration, Jitter: 0.05,
			},
			Tier: workload.Good,
		}
		if err := env.Fabric.Register(phoenix.Desc, phoenix.Behavior); err != nil {
			return 0, err
		}
		env.AddSpec(phoenix)

		mech := beta.New(beta.WithHalfLife(3 * RoundDuration))
		var explorer *monitor.Explorer
		if withExplorer {
			explorer = monitor.NewExplorer(env.Fabric, mech, 0.75,
				func(_ core.ServiceID, obs qos.Observation) map[core.Facet]float64 {
					return workload.Grade(obs, workload.BasePreferences())
				})
			explorer.SetProbeUnknown(true)
		}
		phoenixPicks, latePicks := 0, 0
		_, err = env.Run(mech, RunOptions{
			Rounds: 35, Category: "compute",
			// Greedy: no consumer-side exploration, isolating the
			// explorer's contribution.
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyGreedy)},
			OnRound: func(round int) {
				if explorer != nil {
					if _, err := explorer.Sweep(); err != nil {
						panic(err)
					}
				}
				if round >= 25 {
					tv, known := mech.Score(core.Query{Subject: "s-phoenix", Context: "compute", Facet: core.FacetOverall})
					latePicks++
					if known && tv.Score > 0.6 {
						phoenixPicks++
					}
				}
			},
		})
		if err != nil {
			return 0, err
		}
		return float64(phoenixPicks) / float64(latePicks), nil
	}
	without, err := run(false)
	if err != nil {
		return Report{}, err
	}
	with, err := run(true)
	if err != nil {
		return Report{}, err
	}
	body := Table([][]string{
		{"explorer agents", "late-phase rounds crediting the improved service"},
		{"off", F(without)},
		{"on", F(with)},
	})
	pass := with > 0.8 && without < 0.2
	return Report{
		ID:    "C9",
		Title: "Explorer agents rehabilitate improved services",
		PaperClaim: "explorer agents consume services with a negative reputation; once quality has improved " +
			"they help the services gain positive reputation and a chance to be selected again",
		Body:  body,
		Shape: fmt.Sprintf("improved service re-credited in %.0f%% of late rounds with explorers vs %.0f%% without", 100*with, 100*without),
		Pass:  pass,
		Data: map[string]float64{
			"with_explorer":    with,
			"without_explorer": without,
		},
	}, nil
}
