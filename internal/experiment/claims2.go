package experiment

import (
	"fmt"
	"math"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/p2p"
	"wstrust/internal/qos"
	"wstrust/internal/registry"
	"wstrust/internal/simclock"
	"wstrust/internal/trust/beta"
	"wstrust/internal/trust/cf"
	"wstrust/internal/trust/eigentrust"
	"wstrust/internal/trust/filtering"
	"wstrust/internal/trust/resource"
	"wstrust/internal/trust/vu"
	"wstrust/internal/workload"
)

// C4 validates the global-vs-personalized claim of Sections 4 and 5: as
// consumer preferences grow heterogeneous, personalized mechanisms
// (collaborative filtering) overtake global ones (Amazon-style means),
// while at homogeneity "a global reputation system is sufficient".
func C4(seed int64) (Report, error) {
	hets := []float64{0, 0.25, 0.5, 0.75, 1}
	mechs := []func() core.Mechanism{
		func() core.Mechanism { return resource.NewAmazon() }, // global
		func() core.Mechanism { return cf.New() },             // personalized
	}

	// Every cell is averaged over three independent populations to damp
	// single-draw luck. Each (heterogeneity, mechanism, replicate) run
	// owns its Env and RNG streams, so the whole grid fans out flat over
	// Populations: during a parallel suite run, idle workers absorb
	// replicates and C4 stops dominating the critical path, while the
	// index-addressed merge below keeps the report byte-identical to the
	// old nested sequential loops.
	const reps = 3
	regrets := make([]float64, len(hets)*len(mechs)*reps)
	err := Populations(len(regrets), func(i int) error {
		h := hets[i/(len(mechs)*reps)]
		mk := mechs[(i/reps)%len(mechs)]
		repSeed := seed + int64(i%reps)*1000
		specialists := workload.GenerateSpecialists(simclock.Stream(repSeed, "c4-services"), 24, "compute")
		env, err := NewEnv(EnvConfig{
			Seed:           repSeed,
			CustomServices: specialists,
			Consumers:      36,
			Heterogeneity:  h,
		})
		if err != nil {
			return err
		}
		res, err := env.Run(mk(), RunOptions{
			Rounds: 30, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.15)},
		})
		if err != nil {
			return err
		}
		regrets[i] = res.MeanRegret
		return nil
	})
	if err != nil {
		return Report{}, err
	}

	rows := [][]string{{"heterogeneity", "global regret", "personalized regret", "winner"}}
	data := map[string]float64{}
	var globalAtZero, personalAtZero float64
	var globalHigh, personalHigh []float64
	for hi, h := range hets {
		cell := func(mi int) float64 {
			base := (hi*len(mechs) + mi) * reps
			return mean(regrets[base : base+reps])
		}
		global, personal := cell(0), cell(1)
		winner := "global"
		if personal < global {
			winner = "personalized"
		}
		rows = append(rows, []string{F(h), F(global), F(personal), winner})
		data[fmt.Sprintf("global_%g", h)] = global
		data[fmt.Sprintf("personal_%g", h)] = personal
		if h == 0 {
			globalAtZero, personalAtZero = global, personal
		}
		if h >= 0.5 {
			globalHigh = append(globalHigh, global)
			personalHigh = append(personalHigh, personal)
		}
	}
	// Shape: personalized clearly wins the heterogeneous half on average,
	// and does no harm at homogeneity — the paper claims global is
	// *sufficient* (not superior) when personalization is unimportant.
	// (Single-point gap comparisons are too noisy to gate on.)
	gh, ph := mean(globalHigh), mean(personalHigh)
	gapAtZero := globalAtZero - personalAtZero
	gapAtOne := data["global_1"] - data["personal_1"]
	pass := ph < gh && personalAtZero < globalAtZero+0.05
	return Report{
		ID:    "C4",
		Title: "Personalization pays off under heterogeneous preferences",
		PaperClaim: "if selection includes subjective factors, personalized reputation systems are required; " +
			"for services where personalization is unimportant, a global system is sufficient",
		Body: Table(rows),
		Shape: fmt.Sprintf("personalization advantage grows from %.3f (h=0) to %.3f (h=1); mean over h≥0.5: personalized %.3f < global %.3f",
			gapAtZero, gapAtOne, ph, gh),
		Pass: pass,
		Data: data,
	}, nil
}

// C5 validates Section 3.1's question 3: the unfair-rating defenses
// (majority opinion [26], cluster filtering [5], Zhang-Cohen advisor
// trust [38]) keep reputation accurate as the liar fraction climbs, while
// the undefended mean degrades.
func C5(seed int64) (Report, error) {
	fractions := []float64{0, 0.2, 0.4, 0.6}
	strategies := []filtering.Strategy{filtering.None, filtering.Majority, filtering.Cluster, filtering.ZhangCohen}
	rows := [][]string{{"liar fraction", "none MAE", "majority MAE", "cluster MAE", "zhang-cohen MAE"}}
	data := map[string]float64{}
	for _, frac := range fractions {
		row := []string{F(frac)}
		for _, strat := range strategies {
			env, err := NewEnv(EnvConfig{
				Seed:         seed,
				Services:     workload.ServiceOptions{N: 20, Category: "compute"},
				Consumers:    25,
				LiarFraction: frac,
				Attack:       attack.Complementary{},
			})
			if err != nil {
				return Report{}, err
			}
			mech := filtering.New(strat)
			res, err := env.Run(mech, RunOptions{
				Rounds: 25, Category: "compute",
				EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.2)},
			})
			if err != nil {
				return Report{}, err
			}
			row = append(row, F(res.MAE))
			data[fmt.Sprintf("%s_%g", strat, frac)] = res.MAE
		}
		rows = append(rows, row)
	}
	noneAt04 := data[fmt.Sprintf("%s_%g", filtering.None, 0.4)]
	defendedBetter := 0
	for _, s := range strategies[1:] {
		if data[fmt.Sprintf("%s_%g", s, 0.4)] < noneAt04 {
			defendedBetter++
		}
	}
	pass := defendedBetter >= 2 &&
		data[fmt.Sprintf("%s_%g", filtering.None, 0.4)] > data[fmt.Sprintf("%s_%g", filtering.None, 0.0)]
	return Report{
		ID:    "C5",
		Title: "Unfair-rating defenses under badmouthing/ballot-stuffing",
		PaperClaim: "dishonest feedback is inevitable; cluster filtering, majority opinion, and combined " +
			"approaches have been proposed to combat it",
		Body: Table(rows),
		Shape: fmt.Sprintf("at 40%% liars: undefended MAE %.3f; %d/3 defenses improve on it",
			noneAt04, defendedBetter),
		Pass: pass,
		Data: data,
	}, nil
}

// C6 validates the decentralization cost claim of Sections 3.2/4: the
// decentralized designs (EigenTrust on a peer network, Vu et al. on the
// P-Grid) reach accuracy comparable to the centralized registry, but pay
// for it in messages — "much more complicated … a lot of communication and
// calculation".
func C6(seed int64) (Report, error) {
	type variant struct {
		name  string
		build func(env *Env) (core.Mechanism, func() int64, error)
	}
	variants := []variant{
		{"central registry + beta", func(env *Env) (core.Mechanism, func() int64, error) {
			store := registry.NewStore()
			mech := beta.New()
			// Central cost model: one message per submit/query to the
			// registry; the mechanism itself is co-located with it.
			return &storeBacked{store: store, inner: mech}, store.MessageCount, nil
		}},
		{"eigentrust (peer gossip)", func(env *Env) (core.Mechanism, func() int64, error) {
			net := p2p.NewNetwork()
			m := eigentrust.New(eigentrust.WithNetwork(net))
			return m, net.MessageCount, nil
		}},
		{"vu-qos (P-Grid registries)", func(env *Env) (core.Mechanism, func() int64, error) {
			net := p2p.NewNetwork()
			ids := make([]p2p.NodeID, 32)
			for i := range ids {
				ids[i] = p2p.NodeID(fmt.Sprintf("reg%03d", i))
			}
			g, err := p2p.BuildPGrid(net, ids, 3, simclock.Stream(seed, "c6-grid"))
			if err != nil {
				return nil, nil, err
			}
			m, err := vu.New(g, ids, func(id core.ServiceID) (qos.Vector, bool) {
				spec, ok := env.Spec(id)
				if !ok {
					return nil, false
				}
				return spec.Behavior.True.Clone(), true
			})
			return m, net.MessageCount, err
		}},
	}

	rows := [][]string{{"design", "mean regret", "hit rate", "messages"}}
	data := map[string]float64{}
	for _, v := range variants {
		env, err := NewEnv(EnvConfig{
			Seed:      seed,
			Services:  workload.ServiceOptions{N: 20, Category: "compute"},
			Consumers: 20,
		})
		if err != nil {
			return Report{}, err
		}
		mech, msgs, err := v.build(env)
		if err != nil {
			return Report{}, err
		}
		res, err := env.Run(mech, RunOptions{
			Rounds: 20, Category: "compute",
			EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
		})
		if err != nil {
			return Report{}, err
		}
		rows = append(rows, []string{v.name, F(res.MeanRegret), F(res.HitRate), FI(msgs())})
		data[v.name+"_regret"] = res.MeanRegret
		data[v.name+"_messages"] = float64(msgs())
	}
	centralMsgs := data["central registry + beta_messages"]
	vuMsgs := data["vu-qos (P-Grid registries)_messages"]
	vuRegret := data["vu-qos (P-Grid registries)_regret"]
	centralRegret := data["central registry + beta_regret"]
	pass := vuMsgs > centralMsgs && math.Abs(vuRegret-centralRegret) < 0.12
	return Report{
		ID:    "C6",
		Title: "Decentralized accuracy at a communication premium",
		PaperClaim: "decentralized mechanisms are more complex and involve a lot of communication; " +
			"centralized ones are simpler but need a reliable central server",
		Body: Table(rows),
		Shape: fmt.Sprintf("vu-qos regret %.3f ≈ central %.3f but %.0f× the messages",
			vuRegret, centralRegret, vuMsgs/math.Max(1, centralMsgs)),
		Pass: pass,
		Data: data,
	}, nil
}

// storeBacked counts central-registry traffic for the centralized variant:
// every submit goes through the store.
type storeBacked struct {
	store *registry.Store
	inner core.Mechanism
}

func (s *storeBacked) Name() string { return s.inner.Name() }

func (s *storeBacked) Submit(fb core.Feedback) error {
	if err := s.store.Submit(fb); err != nil {
		return err
	}
	return s.inner.Submit(fb)
}

func (s *storeBacked) Score(q core.Query) (core.TrustValue, bool) {
	return s.inner.Score(q)
}
