package experiment

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// workPool is a counting semaphore shared between the suite workers and
// the nested population fan-out inside individual experiments (C4, F3).
// Every concurrently running unit of work — a whole experiment, or one
// population replicate — holds exactly one token, so total concurrency
// never exceeds the -parallel budget no matter how fan-outs nest.
type workPool struct {
	tokens chan struct{}
}

func newWorkPool(capacity int) *workPool {
	p := &workPool{tokens: make(chan struct{}, capacity)}
	for i := 0; i < capacity; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// acquire blocks until a token is free. Suite workers use it: they are
// dedicated goroutines, so waiting is the correct backpressure.
func (p *workPool) acquire() { <-p.tokens }

// tryAcquire grabs a token only if one is free right now. Population
// fan-out uses it: the caller already holds a token (it is inside a
// running experiment) and must never block on more, or nested waits
// could starve the suite.
func (p *workPool) tryAcquire() bool {
	select {
	case <-p.tokens:
		return true
	default:
		return false
	}
}

func (p *workPool) release() { p.tokens <- struct{}{} }

// suitePool is set by RunSuite for the duration of a parallel run and
// read by Populations. It only ever influences *scheduling*: population
// results are index-addressed, so whichever pool (or none) is installed,
// the merged numbers are byte-identical. Concurrent RunSuite calls
// (tests) at worst share or drop each other's helper slots.
var suitePool atomic.Pointer[workPool]

// Populations runs fn(0) … fn(n-1) — one call per independent population
// replicate — and returns the lowest-index error, or nil.
//
// When a parallel suite run is active and workers sit idle (the tail of
// the suite, where one long experiment dominates the critical path),
// replicates are handed to those idle slots; otherwise the caller runs
// them inline, exactly as the old sequential loops did. fn must follow
// the suite's determinism contract: each replicate derives its own Env
// and RNG streams from its index and shares no mutable state with the
// others, and fn writes results into index-addressed slots so completion
// order cannot reorder the merge.
func Populations(n int, fn func(rep int) error) error {
	errs := make([]error, n)
	pool := suitePool.Load()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// The final replicate always runs on the caller: it would otherwise
		// idle in Wait while holding its own token.
		if i < n-1 && pool != nil && pool.tryAcquire() {
			wg.Add(1)
			go func(rep int) {
				defer wg.Done()
				defer pool.release()
				errs[rep] = replicateProtected(fn, rep)
			}(i)
			continue
		}
		errs[i] = replicateProtected(fn, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// replicateProtected runs one population replicate with the same panic
// isolation RunSuite gives whole experiments: a panic on a borrowed
// worker slot must fail its experiment, not kill the process.
func replicateProtected(fn func(rep int) error, rep int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("population replicate %d: panic: %v\n%s", rep, rec, debug.Stack())
		}
	}()
	return fn(rep)
}
