package experiment

import (
	"errors"
	"testing"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/soa"
	"wstrust/internal/workload"
)

var errTest = errors.New("boom")

func newCacheEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Seed:      11,
		Services:  workload.ServiceOptions{N: 8, Category: "compute"},
		Consumers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// perfectSpec is a service at the top of every metric's grade scale.
func perfectSpec(id string) workload.ServiceSpec {
	truth := qos.Vector{
		qos.ResponseTime: 50, qos.Availability: 1,
		qos.Accuracy: 1, qos.Throughput: 100, qos.Cost: 1,
	}
	return workload.ServiceSpec{
		Desc: soa.Description{
			Service: core.ServiceID(id), Provider: "p-star", Name: id, Category: "compute",
			Operations: []soa.Operation{{Name: "Execute"}}, Advertised: truth.Clone(),
		},
		Behavior: soa.Behavior{True: truth},
		Tier:     workload.Good,
	}
}

// fastSuite is the subset of runners cheap enough to execute twice under
// the race detector. It deliberately includes the registry-mutating
// experiments (C9 registers mid-market, C10 deregisters and re-registers,
// A4 churns the overlay) so the candidate-cache invalidation path runs
// under -race too, and F3 so the Populations fan-out onto idle suite
// workers is raced and diffed against its sequential replay.
func fastSuite(t *testing.T) []Runner {
	t.Helper()
	ids := []string{"C3", "C6", "C7", "C8", "C9", "C10", "F3", "A1", "A2", "A3", "A4", "A5"}
	out := make([]Runner, 0, len(ids))
	for _, id := range ids {
		r, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

// TestRunAllParallelMatchesSequential is the determinism guarantee behind
// `wsxsim -parallel`: every experiment owns its Env and seeded RNG streams,
// so a parallel suite run must render per-experiment reports byte-identical
// to the sequential run at the same seed. Under the race detector (or
// -short) it runs the fast subset; otherwise the full suite.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	const seed = 42
	var seq, par []Outcome
	if raceEnabled || testing.Short() {
		runners := fastSuite(t)
		seq = RunSuite(runners, seed, 1)
		par = RunSuite(runners, seed, 4)
	} else {
		seq = RunAll(seed, 1)
		par = RunAll(seed, 4)
	}
	if len(seq) != len(par) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Runner.ID != par[i].Runner.ID {
			t.Fatalf("outcome %d ordering differs: %s vs %s", i, seq[i].Runner.ID, par[i].Runner.ID)
		}
		if (seq[i].Err == nil) != (par[i].Err == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", seq[i].Runner.ID, seq[i].Err, par[i].Err)
		}
		if seq[i].Err != nil {
			t.Fatalf("%s: failed: %v", seq[i].Runner.ID, seq[i].Err)
		}
		if got, want := par[i].Report.String(), seq[i].Report.String(); got != want {
			t.Errorf("%s: parallel report differs from sequential.\nsequential:\n%s\nparallel:\n%s",
				seq[i].Runner.ID, want, got)
		}
	}
}

// TestRunSuiteWorkerCapAndErrors checks the pool clamps parallelism and
// reports per-runner errors in order.
func TestRunSuiteWorkerCapAndErrors(t *testing.T) {
	boom := Runner{ID: "X1", Desc: "always fails", Run: func(int64) (Report, error) {
		return Report{}, errTest
	}}
	okRun := Runner{ID: "X2", Desc: "always passes", Run: func(int64) (Report, error) {
		return Report{ID: "X2", Pass: true}, nil
	}}
	outs := RunSuite([]Runner{boom, okRun}, 1, 64) // far more workers than jobs
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	if outs[0].Err == nil || outs[0].Runner.ID != "X1" {
		t.Fatalf("first outcome should carry the failure: %+v", outs[0])
	}
	if outs[1].Err != nil || outs[1].Report.ID != "X2" {
		t.Fatalf("second outcome should pass: %+v", outs[1])
	}
}

// TestCandidatesCacheInvalidation covers the registry-version invalidation
// behind Env.Candidates: the cached slice is reused while the registry is
// quiet and rebuilt after any publish or unpublish.
func TestCandidatesCacheInvalidation(t *testing.T) {
	env := newCacheEnv(t)
	a := env.Candidates("compute")
	b := env.Candidates("compute")
	if len(a) == 0 || len(a) != len(b) || &a[0] != &b[0] {
		t.Fatal("unchanged registry should return the cached candidate slice")
	}
	env.Fabric.Deregister(a[0].Service)
	c := env.Candidates("compute")
	if len(c) != len(a)-1 {
		t.Fatalf("after deregister: %d candidates, want %d", len(c), len(a)-1)
	}
	for _, cand := range c {
		if cand.Service == a[0].Service {
			t.Fatal("deregistered service still in candidate set")
		}
	}
}

// TestBestForMemoInvalidation covers the oracle memo: AddSpec must
// invalidate the cached best utility.
func TestBestForMemoInvalidation(t *testing.T) {
	env := newCacheEnv(t)
	prefs := env.Consumers[0].Prefs
	before, _ := env.bestFor(prefs, "compute")
	if again, _ := env.bestFor(prefs, "compute"); again != before {
		t.Fatalf("memoized bestFor changed without a spec change: %g vs %g", again, before)
	}
	// A clearly dominant newcomer must displace the cached best.
	star := perfectSpec("s-star")
	if err := env.Fabric.Register(star.Desc, star.Behavior); err != nil {
		t.Fatal(err)
	}
	env.AddSpec(star)
	after, id := env.bestFor(prefs, "compute")
	if id != "s-star" || after <= before {
		t.Fatalf("bestFor ignored new dominant spec: best=%g id=%s (was %g)", after, id, before)
	}
}
