package experiment

import (
	"math"
	"strings"
	"testing"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/trust/beta"
	"wstrust/internal/workload"
)

func TestNewEnvDeterministic(t *testing.T) {
	mk := func() *Env {
		env, err := NewEnv(EnvConfig{
			Seed:      7,
			Services:  workload.ServiceOptions{N: 10, Category: "compute"},
			Consumers: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	a, b := mk(), mk()
	for i := range a.Specs {
		if a.Specs[i].Desc.Service != b.Specs[i].Desc.Service ||
			a.Specs[i].Tier != b.Specs[i].Tier {
			t.Fatal("environment generation not deterministic")
		}
	}
	if len(a.Candidates("compute")) != 10 {
		t.Fatalf("candidates = %d", len(a.Candidates("compute")))
	}
	if len(a.Candidates("nope")) != 0 {
		t.Fatal("category filter broken")
	}
}

func TestEnvLiarAssignment(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed:         1,
		Services:     workload.ServiceOptions{N: 6},
		Consumers:    10,
		LiarFraction: 0.3,
		Attack:       attack.Complementary{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if env.Liars.LiarCount() != 3 {
		t.Fatalf("liar count = %d", env.Liars.LiarCount())
	}
}

func TestRunProducesSaneMetrics(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed:      3,
		Services:  workload.ServiceOptions{N: 12, Category: "compute"},
		Consumers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Run(beta.New(), RunOptions{
		Rounds: 10, Category: "compute",
		EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RegretSeries) != 10 {
		t.Fatalf("series length = %d", len(res.RegretSeries))
	}
	if res.MeanRegret < 0 || res.MeanRegret > 1 {
		t.Fatalf("regret = %g", res.MeanRegret)
	}
	if res.HitRate < 0 || res.HitRate > 1 {
		t.Fatalf("hit rate = %g", res.HitRate)
	}
	if res.Invocations != 80 {
		t.Fatalf("invocations = %d, want 8 consumers × 10 rounds", res.Invocations)
	}
	if math.IsNaN(res.MAE) {
		t.Fatal("MAE is NaN after a full run")
	}
}

func TestRunLearningReducesRegret(t *testing.T) {
	env, err := NewEnv(EnvConfig{
		Seed:      5,
		Services:  workload.ServiceOptions{N: 15, Category: "compute"},
		Consumers: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Run(beta.New(), RunOptions{
		Rounds: 30, Category: "compute",
		EngineOpts: []core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	early := mean(res.RegretSeries[:5])
	late := mean(res.RegretSeries[25:])
	if late >= early {
		t.Fatalf("no learning: early %g, late %g", early, late)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([][]string{{"a", "bb"}, {"1", "2"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Fatalf("table = %q", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline not empty")
	}
	out := Sparkline([]float64{0, 0.5, 1})
	if !strings.Contains(out, "min 0.000") || !strings.Contains(out, "max 1.000") {
		t.Fatalf("sparkline = %q", out)
	}
	flat := Sparkline([]float64{0.4, 0.4})
	if flat == "" {
		t.Fatal("flat series broke sparkline")
	}
}

func TestFFormat(t *testing.T) {
	if F(math.NaN()) != "n/a" {
		t.Fatal("NaN format")
	}
	if F(0.5) != "0.500" {
		t.Fatalf("F(0.5) = %q", F(0.5))
	}
}

func TestConvergenceRound(t *testing.T) {
	series := []float64{0.9, 0.7, 0.3, 0.1, 0.1, 0.1, 0.1, 0.1}
	got := convergenceRound(series)
	if got < 2 || got > 3 {
		t.Fatalf("convergenceRound = %d", got)
	}
	if convergenceRound([]float64{1}) != -1 {
		t.Fatal("short series should not converge")
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("F1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if len(All()) != 25 {
		t.Fatalf("experiment count = %d, want 25", len(All()))
	}
}

// TestReportString covers the rendering contract every experiment uses.
func TestReportString(t *testing.T) {
	r := Report{ID: "X", Title: "t", PaperClaim: "c", Body: "b", Shape: "s", Pass: true}
	out := r.String()
	for _, want := range []string{"== X: t ==", "paper: c", "b", "measured: s", "MATCH"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q in %q", want, out)
		}
	}
	r.Pass = false
	if !strings.Contains(r.String(), "MISMATCH") {
		t.Fatal("fail verdict missing")
	}
}

// End-to-end: every experiment runs and matches the paper's shape at the
// default seed. ~30s total; skipped under -short.
func TestExperimentsMatchPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("the full experiment suite takes ~30s")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := r.Run(42)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass {
				t.Fatalf("%s did not match the paper's shape: %s", r.ID, rep.Shape)
			}
			if rep.Body == "" || rep.Shape == "" || rep.ID != r.ID {
				t.Fatalf("malformed report: %+v", rep)
			}
		})
	}
}
