package experiment

import (
	"reflect"
	"testing"

	"wstrust/internal/simclock"
	"wstrust/internal/trust/beta"
	"wstrust/internal/workload"
)

// TestEnvFromSlabsMatchesGenerated is the experiment-layer half of the
// SoA differential: an Env built from slab-materialized populations
// (CustomServices/CustomConsumers) must be indistinguishable from the
// generated one — same specs, and bit-identical RunResults for a full
// selection/feedback loop — at the three reference seeds.
func TestEnvFromSlabsMatchesGenerated(t *testing.T) {
	opts := workload.ServiceOptions{N: 40, ExaggerateFrac: 0.25, Exaggeration: 1.5}
	const consumers = 60

	for _, seed := range []int64{42, 7, 123} {
		runOnce := func(cfg EnvConfig) RunResult {
			env, err := NewEnv(cfg)
			if err != nil {
				t.Fatalf("seed %d: NewEnv: %v", seed, err)
			}
			res, err := env.Run(beta.New(), RunOptions{Rounds: 8})
			if err != nil {
				t.Fatalf("seed %d: Run: %v", seed, err)
			}
			return res
		}

		generated := runOnce(EnvConfig{Seed: seed, Services: opts, Consumers: consumers, Heterogeneity: 0.5})

		// Materialize the same populations through the slabs, consuming
		// the same named streams the generators use.
		svcSlab := workload.GenerateServiceSlab(simclock.Stream(seed, "services"), opts)
		conSlab := workload.GenerateConsumerSlab(simclock.Stream(seed, "consumers"), consumers, 0.5)
		fromSlabs := runOnce(EnvConfig{
			Seed:            seed,
			CustomServices:  svcSlab.Specs(),
			CustomConsumers: conSlab.Specs(),
		})

		if !reflect.DeepEqual(generated, fromSlabs) {
			t.Fatalf("seed %d: slab-built env diverges from generated env:\n generated: %+v\n from slabs: %+v",
				seed, generated, fromSlabs)
		}
	}
}
