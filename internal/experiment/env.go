// Package experiment is the harness that regenerates every figure and
// claim of the paper (see DESIGN.md §3): it wires complete marketplaces —
// fabric, registries, overlays, consumer populations, attack assignments —
// runs selection/feedback loops over any core.Mechanism, computes the
// quality metrics (regret, hit rate, reputation error, convergence,
// message and monitoring cost), and renders the aligned text tables and
// series the experiments report.
package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/fault"
	"wstrust/internal/p2p"
	"wstrust/internal/resilience"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
	"wstrust/internal/workload"
)

// RoundDuration is the simulated time between selection rounds.
const RoundDuration = time.Hour

// Env is one complete simulated marketplace. Like the selection loop that
// drives it, an Env is single-goroutine; parallel suite runs give every
// experiment its own Env.
type Env struct {
	Clock  *simclock.Virtual
	Rng    *rand.Rand
	Fabric *soa.Fabric
	// Specs is the ground-truth service population. Mutate it through
	// AddSpec/ReplaceSpec so the oracle caches stay coherent.
	Specs     []workload.ServiceSpec
	Consumers []workload.ConsumerSpec
	Liars     attack.Assignment

	specByID map[core.ServiceID]workload.ServiceSpec

	// candCache holds per-category candidate sets, valid while the UDDI
	// version is unchanged; candVersion is the version it was built at.
	candCache   map[string][]core.Candidate
	candVersion int64

	// oracle memoizes bestFor per (preference fingerprint, category);
	// specsGen invalidates it when the spec population changes.
	oracle   map[oracleKey]oracleEntry
	specsGen int64

	// Fault layer (zero Faults = perfect substrate; every field below is
	// then nil and all Wire* calls are no-ops, so fault-free runs are
	// byte-identical to builds without this layer).
	Faults     fault.Profile
	seed       int64
	injector   *fault.Injector
	retrier    *fault.Retrier
	churners   []*fault.Churner
	wireSeq    int64
	faultRound int // current Run round; drives outage windows

	// Resilience layer (zero profile = no guard; Candidates then behaves
	// byte-identically to builds without this layer).
	Resil     resilience.Profile
	discovery *discoveryGuard
}

type oracleKey struct {
	prefs    string
	category string
}

type oracleEntry struct {
	gen  int64
	best float64
	id   core.ServiceID
}

// EnvConfig parameterizes environment construction.
type EnvConfig struct {
	Seed          int64
	Services      workload.ServiceOptions
	Consumers     int
	Heterogeneity float64
	// LiarFraction of consumers run Attack; nil Attack means honest.
	LiarFraction float64
	Attack       attack.Liar
	// CustomServices overrides generation with a prebuilt population
	// (specialist markets, mediated scenarios).
	CustomServices []workload.ServiceSpec
	// CustomConsumers overrides consumer generation with a prebuilt
	// population (slab-materialized populations, scripted preference
	// mixes). nil generates Consumers/Heterogeneity as usual.
	CustomConsumers []workload.ConsumerSpec
	// Faults selects the fault regime. nil inherits the process default
	// (set by wsxsim -faults); a non-nil profile is used verbatim, so
	// experiments that need a specific regime — including the explicitly
	// perfect substrate of a baseline run — pass their own.
	Faults *fault.Profile
	// Resilience selects the discovery-resilience regime. nil inherits the
	// process default (set by wsxsim -resilience); a non-nil profile is
	// used verbatim, so R5 pins its regimes per run.
	Resilience *resilience.Profile
}

// defaultFaults is the process-wide profile cfg.Faults == nil inherits.
// Set once by SetDefaultFaults before any experiments run (wsxsim does it
// before RunSuite spawns workers); never written concurrently.
var defaultFaults fault.Profile

// SetDefaultFaults installs the fault profile environments inherit when
// their config carries none. Call before running experiments.
func SetDefaultFaults(p fault.Profile) { defaultFaults = p }

// defaultResilience is the process-wide resilience profile
// cfg.Resilience == nil inherits; same contract as defaultFaults.
var defaultResilience resilience.Profile

// SetDefaultResilience installs the discovery-resilience profile
// environments inherit when their config carries none. Call before
// running experiments.
func SetDefaultResilience(p resilience.Profile) { defaultResilience = p }

// NewEnv builds the marketplace: generates the populations, publishes
// every service on a fabric, and assigns attackers.
func NewEnv(cfg EnvConfig) (*Env, error) {
	clock := simclock.NewVirtual()
	rng := simclock.NewRand(cfg.Seed)
	fabric := soa.NewFabric(clock, simclock.Stream(cfg.Seed, "fabric"), soa.NewUDDI())

	specs := cfg.CustomServices
	if specs == nil {
		specs = workload.GenerateServices(simclock.Stream(cfg.Seed, "services"), cfg.Services)
	}
	for _, s := range specs {
		if err := fabric.Register(s.Desc, s.Behavior); err != nil {
			return nil, fmt.Errorf("experiment: register %s: %w", s.Desc.Service, err)
		}
	}
	consumers := cfg.CustomConsumers
	if consumers == nil {
		consumers = workload.GenerateConsumers(simclock.Stream(cfg.Seed, "consumers"), cfg.Consumers, cfg.Heterogeneity)
	}
	ids := make([]core.ConsumerID, len(consumers))
	for i, c := range consumers {
		ids[i] = c.ID
	}
	env := &Env{
		Clock:     clock,
		Rng:       rng,
		Fabric:    fabric,
		Specs:     specs,
		Consumers: consumers,
		Liars:     attack.Assign(ids, cfg.LiarFraction, cfg.Attack),
		specByID:  map[core.ServiceID]workload.ServiceSpec{},
		seed:      cfg.Seed,
	}
	for _, s := range specs {
		env.specByID[s.Desc.Service] = s
	}
	profile := defaultFaults
	if cfg.Faults != nil {
		profile = *cfg.Faults
	}
	if profile.Enabled() {
		env.Faults = profile
		env.injector = fault.NewInjector(cfg.Seed, profile, clock)
		env.retrier = profile.Retry.Bind(cfg.Seed, clock)
		if len(profile.Outages) > 0 {
			windows := append([]fault.Window(nil), profile.Outages...)
			fabric.UDDI().SetBrowseGate(func() bool {
				for _, w := range windows {
					if w.Contains(env.faultRound) {
						return false
					}
				}
				return true
			})
		}
	}
	rp := defaultResilience
	if cfg.Resilience != nil {
		rp = *cfg.Resilience
	}
	if rp.Enabled() {
		env.Resil = rp
		g := &discoveryGuard{attempts: rp.Attempts}
		if g.attempts < 1 {
			g.attempts = 1
		}
		if rp.Breaker != nil {
			g.breaker = resilience.NewBreaker(*rp.Breaker, clock,
				simclock.Stream(cfg.Seed, "resilience.breaker"))
		}
		env.discovery = g
	}
	return env, nil
}

// WireNetwork attaches the environment's fault layer to a p2p transport:
// the seeded per-link injector and the shared retry policy. A no-op when
// faults are disabled, so mechanism builders call it unconditionally.
func (e *Env) WireNetwork(net *p2p.Network) {
	if e.injector == nil {
		return
	}
	net.SetFaultInjector(e.injector)
	net.SetRetrier(e.retrier)
}

// WireGrid fault-wires a P-Grid: transport faults plus churn with route
// repair after every membership change.
func (e *Env) WireGrid(g *p2p.PGrid) {
	if e.injector == nil {
		return
	}
	e.WireNetwork(g.Network())
	if e.Faults.ChurnRate > 0 {
		c := e.newChurner(g.Network())
		rng := e.repairRNG()
		c.OnRepair(func() { g.RepairRoutes(rng) })
	}
}

// WireOverlay fault-wires an unstructured overlay: transport faults plus
// churn with neighbour re-wiring after every membership change.
func (e *Env) WireOverlay(o *p2p.Overlay) {
	if e.injector == nil {
		return
	}
	e.WireNetwork(o.Network())
	if e.Faults.ChurnRate > 0 {
		c := e.newChurner(o.Network())
		rng := e.repairRNG()
		c.OnRepair(func() { o.Rewire(rng) })
	}
}

// newChurner builds a churner for one network with a wiring-unique seed
// (two substrates in one env must not churn in lockstep).
func (e *Env) newChurner(net *p2p.Network) *fault.Churner {
	e.wireSeq++
	c := fault.NewChurner(net, e.seed+e.wireSeq*1_000_003, e.Faults)
	e.churners = append(e.churners, c)
	return c
}

// repairRNG returns a wiring-unique stream for repair randomness.
func (e *Env) repairRNG() *rand.Rand {
	e.wireSeq++
	return simclock.Stream(e.seed, fmt.Sprintf("fault.repair:%d", e.wireSeq))
}

// ChurnStats sums down/up transitions across every wired churner (zero
// when faults are off or no churn-capable substrate was wired).
func (e *Env) ChurnStats() (down, up int64) {
	for _, c := range e.churners {
		d, u := c.Churned()
		down += d
		up += u
	}
	return down, up
}

// FaultStats reports the injector's accounting (zero when faults are off).
func (e *Env) FaultStats() fault.Stats {
	if e.injector == nil {
		return fault.Stats{}
	}
	return e.injector.Stats()
}

// RetryStats reports how many transport retries fired and the virtual time
// they waited (zero when faults are off).
func (e *Env) RetryStats() (retries int64, waited time.Duration) {
	if e.retrier == nil {
		return 0, 0
	}
	return e.retrier.Retries(), e.retrier.Waited()
}

// Spec returns the generated spec for a service.
func (e *Env) Spec(id core.ServiceID) (workload.ServiceSpec, bool) {
	s, ok := e.specByID[id]
	return s, ok
}

// AddSpec adds a service to the ground-truth population (the service must
// already be registered on the fabric) and invalidates the oracle caches.
func (e *Env) AddSpec(s workload.ServiceSpec) {
	e.Specs = append(e.Specs, s)
	e.specByID[s.Desc.Service] = s
	e.specsGen++
}

// ReplaceSpec swaps the stored ground truth for an already-known service
// and invalidates the oracle caches.
func (e *Env) ReplaceSpec(s workload.ServiceSpec) {
	for i := range e.Specs {
		if e.Specs[i].Desc.Service == s.Desc.Service {
			e.Specs[i] = s
		}
	}
	e.specByID[s.Desc.Service] = s
	e.specsGen++
}

// Candidates returns the selection candidates (every published service in
// the category; empty category = all). The result is cached per category
// and reused until the registry changes — selection loops call this once
// per consumer per round, and rebuilding the set dominated their profiles.
// The returned slice is shared: callers must not mutate it. Reuse of the
// same backing array also lets core.RankSession detect an unchanged set by
// identity and skip re-normalizing.
func (e *Env) Candidates(category string) []core.Candidate {
	uddi := e.Fabric.UDDI()
	if !e.discoveryUp(uddi) {
		// Registry outage: degrade to the stale cached view rather than
		// stalling selection — consumers keep choosing among the services
		// they already know about until discovery comes back.
		out := e.candCache[category]
		if e.discovery != nil && len(out) == 0 {
			e.discovery.unserved++
		}
		return out
	}
	if v := uddi.Version(); e.candCache == nil || v != e.candVersion {
		e.candCache = map[string][]core.Candidate{}
		e.candVersion = v
	}
	if out, ok := e.candCache[category]; ok {
		return out
	}
	var out []core.Candidate
	for _, d := range uddi.All() {
		if category == "" || d.Category == category {
			out = append(out, d.Candidate())
		}
	}
	e.candCache[category] = out
	return out
}

// ConsumerIDs lists the consumer ids in population order.
func (e *Env) ConsumerIDs() []core.ConsumerID {
	out := make([]core.ConsumerID, len(e.Consumers))
	for i, c := range e.Consumers {
		out[i] = c.ID
	}
	return out
}
