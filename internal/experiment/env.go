// Package experiment is the harness that regenerates every figure and
// claim of the paper (see DESIGN.md §3): it wires complete marketplaces —
// fabric, registries, overlays, consumer populations, attack assignments —
// runs selection/feedback loops over any core.Mechanism, computes the
// quality metrics (regret, hit rate, reputation error, convergence,
// message and monitoring cost), and renders the aligned text tables and
// series the experiments report.
package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
	"wstrust/internal/workload"
)

// RoundDuration is the simulated time between selection rounds.
const RoundDuration = time.Hour

// Env is one complete simulated marketplace. Like the selection loop that
// drives it, an Env is single-goroutine; parallel suite runs give every
// experiment its own Env.
type Env struct {
	Clock  *simclock.Virtual
	Rng    *rand.Rand
	Fabric *soa.Fabric
	// Specs is the ground-truth service population. Mutate it through
	// AddSpec/ReplaceSpec so the oracle caches stay coherent.
	Specs     []workload.ServiceSpec
	Consumers []workload.ConsumerSpec
	Liars     attack.Assignment

	specByID map[core.ServiceID]workload.ServiceSpec

	// candCache holds per-category candidate sets, valid while the UDDI
	// version is unchanged; candVersion is the version it was built at.
	candCache   map[string][]core.Candidate
	candVersion int64

	// oracle memoizes bestFor per (preference fingerprint, category);
	// specsGen invalidates it when the spec population changes.
	oracle   map[oracleKey]oracleEntry
	specsGen int64
}

type oracleKey struct {
	prefs    string
	category string
}

type oracleEntry struct {
	gen  int64
	best float64
	id   core.ServiceID
}

// EnvConfig parameterizes environment construction.
type EnvConfig struct {
	Seed          int64
	Services      workload.ServiceOptions
	Consumers     int
	Heterogeneity float64
	// LiarFraction of consumers run Attack; nil Attack means honest.
	LiarFraction float64
	Attack       attack.Liar
	// CustomServices overrides generation with a prebuilt population
	// (specialist markets, mediated scenarios).
	CustomServices []workload.ServiceSpec
}

// NewEnv builds the marketplace: generates the populations, publishes
// every service on a fabric, and assigns attackers.
func NewEnv(cfg EnvConfig) (*Env, error) {
	clock := simclock.NewVirtual()
	rng := simclock.NewRand(cfg.Seed)
	fabric := soa.NewFabric(clock, simclock.Stream(cfg.Seed, "fabric"), soa.NewUDDI())

	specs := cfg.CustomServices
	if specs == nil {
		specs = workload.GenerateServices(simclock.Stream(cfg.Seed, "services"), cfg.Services)
	}
	for _, s := range specs {
		if err := fabric.Register(s.Desc, s.Behavior); err != nil {
			return nil, fmt.Errorf("experiment: register %s: %w", s.Desc.Service, err)
		}
	}
	consumers := workload.GenerateConsumers(simclock.Stream(cfg.Seed, "consumers"), cfg.Consumers, cfg.Heterogeneity)
	ids := make([]core.ConsumerID, len(consumers))
	for i, c := range consumers {
		ids[i] = c.ID
	}
	env := &Env{
		Clock:     clock,
		Rng:       rng,
		Fabric:    fabric,
		Specs:     specs,
		Consumers: consumers,
		Liars:     attack.Assign(ids, cfg.LiarFraction, cfg.Attack),
		specByID:  map[core.ServiceID]workload.ServiceSpec{},
	}
	for _, s := range specs {
		env.specByID[s.Desc.Service] = s
	}
	return env, nil
}

// Spec returns the generated spec for a service.
func (e *Env) Spec(id core.ServiceID) (workload.ServiceSpec, bool) {
	s, ok := e.specByID[id]
	return s, ok
}

// AddSpec adds a service to the ground-truth population (the service must
// already be registered on the fabric) and invalidates the oracle caches.
func (e *Env) AddSpec(s workload.ServiceSpec) {
	e.Specs = append(e.Specs, s)
	e.specByID[s.Desc.Service] = s
	e.specsGen++
}

// ReplaceSpec swaps the stored ground truth for an already-known service
// and invalidates the oracle caches.
func (e *Env) ReplaceSpec(s workload.ServiceSpec) {
	for i := range e.Specs {
		if e.Specs[i].Desc.Service == s.Desc.Service {
			e.Specs[i] = s
		}
	}
	e.specByID[s.Desc.Service] = s
	e.specsGen++
}

// Candidates returns the selection candidates (every published service in
// the category; empty category = all). The result is cached per category
// and reused until the registry changes — selection loops call this once
// per consumer per round, and rebuilding the set dominated their profiles.
// The returned slice is shared: callers must not mutate it. Reuse of the
// same backing array also lets core.RankSession detect an unchanged set by
// identity and skip re-normalizing.
func (e *Env) Candidates(category string) []core.Candidate {
	if v := e.Fabric.UDDI().Version(); e.candCache == nil || v != e.candVersion {
		e.candCache = map[string][]core.Candidate{}
		e.candVersion = v
	}
	if out, ok := e.candCache[category]; ok {
		return out
	}
	var out []core.Candidate
	for _, d := range e.Fabric.UDDI().All() {
		if category == "" || d.Category == category {
			out = append(out, d.Candidate())
		}
	}
	e.candCache[category] = out
	return out
}

// ConsumerIDs lists the consumer ids in population order.
func (e *Env) ConsumerIDs() []core.ConsumerID {
	out := make([]core.ConsumerID, len(e.Consumers))
	for i, c := range e.Consumers {
		out[i] = c.ID
	}
	return out
}
