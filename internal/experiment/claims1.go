package experiment

import (
	"fmt"
	"math"
	"time"

	"wstrust/internal/core"
	"wstrust/internal/monitor"
	"wstrust/internal/qos"
	"wstrust/internal/registry"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
	"wstrust/internal/trust/beta"
	"wstrust/internal/workload"
)

// C1 validates the Section-2 claim that provider-advertised QoS is
// exploitable while feedback-based reputation identifies good services: in
// a market where the worst 30% of providers exaggerate heavily, the
// advertised-QoS selector keeps falling for them while the reputation
// selector's regret collapses after a few rounds.
func C1(seed int64) (Report, error) {
	run := func(tag string, mech core.Mechanism, opts []core.EngineOption) (RunResult, error) {
		env, err := NewEnv(EnvConfig{
			Seed: seed,
			Services: workload.ServiceOptions{
				N: 24, Category: "compute", ExaggerateFrac: 0.3, Exaggeration: 1.0,
			},
			Consumers: 20,
		})
		if err != nil {
			return RunResult{}, err
		}
		return env.Run(mech, RunOptions{Rounds: 30, Category: "compute", EngineOpts: opts})
	}
	random, err := run("random", nullMechanism{},
		[]core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(1)})
	if err != nil {
		return Report{}, err
	}
	advertised, err := run("advertised", nullMechanism{},
		[]core.EngineOption{core.WithAdvertisedFallback(true)})
	if err != nil {
		return Report{}, err
	}
	reputation, err := run("reputation", beta.New(),
		[]core.EngineOption{core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1)})
	if err != nil {
		return Report{}, err
	}

	body := Table([][]string{
		{"selector", "mean regret", "final-5-round regret", "hit rate"},
		{"random", F(random.MeanRegret), F(mean(random.RegretSeries[25:])), F(random.HitRate)},
		{"advertised QoS", F(advertised.MeanRegret), F(mean(advertised.RegretSeries[25:])), F(advertised.HitRate)},
		{"reputation (beta)", F(reputation.MeanRegret), F(mean(reputation.RegretSeries[25:])), F(reputation.HitRate)},
	}) + "reputation regret per round: " + Sparkline(reputation.RegretSeries) + "\n"

	finalRep := mean(reputation.RegretSeries[25:])
	finalAdv := mean(advertised.RegretSeries[25:])
	pass := finalRep < finalAdv && advertised.MeanRegret < random.MeanRegret
	return Report{
		ID:    "C1",
		Title: "Advertised QoS is exploitable; reputation is not",
		PaperClaim: "a provider may exaggerate its QoS to attract consumers; a consumer is vulnerable to " +
			"inaccurate QoS information, while feedback mechanisms identify good services",
		Body:  body,
		Shape: fmt.Sprintf("steady-state regret: reputation %.3f < advertised %.3f; advertised < random %.3f", finalRep, finalAdv, random.MeanRegret),
		Pass:  pass,
		Data: map[string]float64{
			"random_regret":         random.MeanRegret,
			"advertised_regret":     advertised.MeanRegret,
			"reputation_regret":     reputation.MeanRegret,
			"reputation_steady":     finalRep,
			"advertised_steady":     finalAdv,
			"reputation_conv_round": float64(reputation.ConvergenceRound),
		},
	}, nil
}

// C2 validates the Section-2 cost claim: sensor/active monitoring cost
// scales with the number of services ("the cost will be huge ... it puts
// too much burden on the central node"), while consumer feedback scales
// with usage, independent of how many services exist.
func C2(seed int64) (Report, error) {
	const rounds = 10
	const consumersN = 20
	sizes := []int{10, 50, 100, 500, 1000}
	rows := [][]string{{"services N", "sensor cost", "feedback msgs", "sensor/feedback ratio"}}
	data := map[string]float64{}
	var ratios []float64
	for _, n := range sizes {
		clock := simclock.NewVirtual()
		fabric := soa.NewFabric(clock, simclock.Stream(seed, fmt.Sprintf("c2-%d", n)), soa.NewUDDI())
		specs := workload.GenerateServices(simclock.Stream(seed, fmt.Sprintf("c2s-%d", n)), workload.ServiceOptions{N: n})
		for _, s := range specs {
			if err := fabric.Register(s.Desc, s.Behavior); err != nil {
				return Report{}, err
			}
		}
		// Sensor regime: one probe per service per round.
		tp := monitor.NewThirdParty(fabric)
		for _, s := range specs {
			if err := tp.Deploy(s.Desc.Service); err != nil {
				return Report{}, err
			}
		}
		for r := 0; r < rounds; r++ {
			tp.ProbeAll()
		}
		// Feedback regime: messages = submissions = consumers × rounds,
		// regardless of N.
		store := registry.NewStore()
		consumers := workload.GenerateConsumers(simclock.Stream(seed, "c2c"), consumersN, 0)
		for r := 0; r < rounds; r++ {
			for _, c := range consumers {
				target := specs[(r*consumersN+len(c.ID))%len(specs)]
				res, err := fabric.Invoke(c.ID, target.Desc.Service, "Execute")
				if err != nil {
					return Report{}, err
				}
				if err := store.Submit(core.Feedback{
					Consumer: c.ID, Service: target.Desc.Service, Provider: target.Desc.Provider,
					Observed: res.Observation,
					Ratings:  workload.Grade(res.Observation, c.Prefs),
					At:       clock.Now(),
				}); err != nil {
					return Report{}, err
				}
			}
			clock.Advance(time.Hour)
		}
		ratio := tp.Cost() / float64(store.MessageCount())
		ratios = append(ratios, ratio)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), F(tp.Cost()), FI(store.MessageCount()), F(ratio),
		})
		data[fmt.Sprintf("sensor_cost_%d", n)] = tp.Cost()
		data[fmt.Sprintf("feedback_msgs_%d", n)] = float64(store.MessageCount())
	}
	// Sensor cost must grow ~linearly with N while feedback stays flat:
	// the ratio at N=1000 should be ~100× the ratio at N=10.
	growth := ratios[len(ratios)-1] / ratios[0]
	pass := growth > 50 &&
		data["feedback_msgs_10"] == data["feedback_msgs_1000"]
	return Report{
		ID:    "C2",
		Title: "Monitoring cost scales with #services; feedback with usage",
		PaperClaim: "deploying a sensor per web service is very costly and unsuitable for large systems; " +
			"collecting consumer feedback greatly lowers the burden of the central node",
		Body:  Table(rows),
		Shape: fmt.Sprintf("sensor/feedback cost ratio grows %.0f× from N=10 to N=1000; feedback messages constant", growth),
		Pass:  pass,
		Data:  data,
	}, nil
}

// C3 validates the Section-3 dynamics characteristics: trust decays with
// time and new experiences outweigh old ones (an oscillating provider is
// tracked only with decay), and trust is context-specific (evidence in one
// context does not leak into another).
func C3(seed int64) (Report, error) {
	// One service in continuous use flips from good to bad at round 15; we
	// track how far the mechanism's score lags behind the new reality.
	trackingError := func(withDecay bool) (float64, error) {
		clock := simclock.NewVirtual()
		fabric := soa.NewFabric(clock, simclock.Stream(seed, fmt.Sprintf("c3-%v", withDecay)), soa.NewUDDI())
		good := qos.Vector{
			qos.ResponseTime: 100, qos.Availability: 0.99,
			qos.Accuracy: 0.9, qos.Throughput: 90, qos.Cost: 5,
		}
		bad := qos.Vector{
			qos.ResponseTime: 450, qos.Availability: 0.55,
			qos.Accuracy: 0.2, qos.Throughput: 15, qos.Cost: 5,
		}
		desc := soa.Description{
			Service: "s-flip", Provider: "p001", Name: "flipper", Category: "compute",
			Operations: []soa.Operation{{Name: "Execute"}}, Advertised: good,
		}
		behavior := soa.Behavior{
			True: good, Alt: bad, Dynamics: soa.Oscillating,
			Period: 15 * RoundDuration, Jitter: 0.05,
		}
		if err := fabric.Register(desc, behavior); err != nil {
			return 0, err
		}
		var mech core.Mechanism
		if withDecay {
			mech = beta.New(beta.WithHalfLife(2 * RoundDuration))
		} else {
			mech = beta.New()
		}
		consumers := workload.GenerateConsumers(simclock.Stream(seed, "c3c"), 5, 0)
		var lateErr float64
		var lateN int
		for round := 0; round < 30; round++ {
			for _, c := range consumers {
				res, err := fabric.Invoke(c.ID, "s-flip", "Execute")
				if err != nil {
					return 0, err
				}
				if err := mech.Submit(core.Feedback{
					Consumer: c.ID, Service: "s-flip", Provider: "p001", Context: "compute",
					Observed: res.Observation,
					Ratings:  workload.Grade(res.Observation, c.Prefs),
					At:       clock.Now(),
				}); err != nil {
					return 0, err
				}
			}
			if round >= 20 { // well after the flip
				tv, _ := mech.Score(core.Query{Subject: "s-flip", Context: "compute", Facet: core.FacetOverall})
				truth := workload.TrueUtility(workload.ServiceSpec{
					Behavior: soa.Behavior{True: behavior.TrueAt(clock.Now())},
				}, workload.BasePreferences())
				lateErr += math.Abs(tv.Score - truth)
				lateN++
			}
			clock.Advance(RoundDuration)
		}
		return lateErr / float64(lateN), nil
	}

	stale, err := trackingError(false)
	if err != nil {
		return Report{}, err
	}
	fresh, err := trackingError(true)
	if err != nil {
		return Report{}, err
	}

	// Context specificity, directly on the mechanism.
	ctxMech := beta.New()
	for i := 0; i < 10; i++ {
		_ = ctxMech.Submit(core.Feedback{
			Consumer: "c001", Service: "s-ctx", Context: "weather",
			Ratings: map[core.Facet]float64{core.FacetOverall: 1}, At: simclock.Epoch,
		})
	}
	_, knownOther := ctxMech.Score(core.Query{Subject: "s-ctx", Context: "mechanic", Facet: core.FacetOverall})

	body := Table([][]string{
		{"variant", "post-flip score tracking error"},
		{"no decay (old experiences keep weight)", F(stale)},
		{"half-life 2 rounds (new experiences dominate)", F(fresh)},
	})
	pass := fresh < stale && !knownOther
	return Report{
		ID:    "C3",
		Title: "Trust is dynamic (decay) and context-specific",
		PaperClaim: "trust decays with time; new experiences are more important than old ones; " +
			"trust in one context says nothing about another",
		Body: body,
		Shape: fmt.Sprintf("post-flip tracking error: decayed %.3f < undecayed %.3f; cross-context leak: %v",
			fresh, stale, knownOther),
		Pass: pass,
		Data: map[string]float64{
			"stale_error": stale,
			"fresh_error": fresh,
		},
	}, nil
}
