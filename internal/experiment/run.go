package experiment

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/workload"
)

// RunResult aggregates one selection-loop run.
type RunResult struct {
	// MeanRegret is the average oracle-vs-selected true-utility gap.
	MeanRegret float64
	// RegretSeries is the per-round mean regret (convergence curve).
	RegretSeries []float64
	// HitRate is the fraction of selections landing on a good-tier service.
	HitRate float64
	// MAE is the final mean absolute error between mechanism scores and
	// true utilities across rated services (global view, base preferences).
	MAE float64
	// ConvergenceRound is the first round whose mean regret stays within
	// 50% above the final plateau; -1 if never.
	ConvergenceRound int
	// Invocations and Faults count fabric traffic.
	Invocations, Faults int64
	// Messages counts mechanism communication (CostReporter), if any.
	Messages int64
	// LostSubmits counts feedback the mechanism could not durably record
	// under injected faults (fault-enabled runs degrade instead of
	// aborting; fault-free runs still treat a submit error as fatal).
	LostSubmits int64
}

// RunOptions tunes the loop.
type RunOptions struct {
	Rounds int
	// Category restricts candidates (empty = all).
	Category string
	// EngineOpts configure the selection engine.
	EngineOpts []core.EngineOption
	// SubmitTo receives feedback; defaults to the mechanism itself.
	// Experiments with explorer agents or defended registries override it.
	SubmitTo func(core.Feedback) error
	// OnRound runs after each round (explorer sweeps, behaviour switches).
	OnRound func(round int)
}

// Run drives the marketplace: each round every consumer selects a service
// through the engine, invokes it, grades the observation honestly, lets
// its attack assignment distort the rating, and submits the feedback.
func (e *Env) Run(mech core.Mechanism, opts RunOptions) (RunResult, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 30
	}
	submit := opts.SubmitTo
	if submit == nil {
		submit = mech.Submit
	}
	engine := core.NewEngine(mech, e.Rng, opts.EngineOpts...)
	// The candidate set only changes when the registry does, so rank
	// through a session: Env.Candidates returns the same cached slice until
	// a publish, and the session re-normalizes only on a new slice.
	session := engine.NewRankSession(nil)

	res := RunResult{RegretSeries: make([]float64, 0, opts.Rounds)}
	hits, selections := 0, 0
	startFaults := e.Fabric.Faults()
	startCalls := e.Fabric.Calls()

	for round := 0; round < opts.Rounds; round++ {
		e.faultRound = round // outage windows key off the loop round
		var roundRegret float64
		var roundN int
		for _, consumer := range e.Consumers {
			cands := e.Candidates(opts.Category)
			if len(cands) == 0 {
				return res, fmt.Errorf("experiment: no candidates in category %q", opts.Category)
			}
			session.SetCandidates(cands)
			chosen, _, err := session.Select(consumer.ID, consumer.Prefs)
			if err != nil {
				return res, err
			}
			spec, ok := e.Spec(chosen.Service)
			if !ok {
				return res, fmt.Errorf("experiment: selected unknown service %s", chosen.Service)
			}
			// Oracle bookkeeping.
			best, _ := e.bestFor(consumer.Prefs, opts.Category)
			got := workload.TrueUtility(spec, consumer.Prefs)
			roundRegret += math.Max(0, best-got)
			roundN++
			selections++
			if spec.Tier == workload.Good {
				hits++
			}

			// Consume, grade, distort, report.
			result, err := e.Fabric.Invoke(consumer.ID, chosen.Service, "Execute")
			if err != nil {
				return res, err
			}
			honest := workload.Grade(result.Observation, consumer.Prefs)
			ratings := make(map[core.Facet]float64, len(honest))
			// Iterate facets in sorted order: stateful liars (attack.Random)
			// consume RNG draws per facet, and map order would hand different
			// draws to different facets between runs.
			for _, facet := range core.SortedFacets(honest) {
				ratings[facet] = e.Liars.Distort(consumer.ID, chosen.Service, honest[facet])
			}
			// Liars also forge the measured QoS data to back their story —
			// dishonest reports in [29] are fake measurements, which is what
			// the trusted-monitor comparison detects.
			observed := result.Observation
			if e.Liars.IsLiar(consumer.ID) {
				observed = attack.FabricateObservation(observed,
					honest[core.FacetOverall], ratings[core.FacetOverall])
			}
			fb := core.Feedback{
				Consumer: consumer.ID,
				Service:  chosen.Service,
				Provider: spec.Desc.Provider,
				Context:  core.Context(spec.Desc.Category),
				Observed: observed,
				Ratings:  ratings,
				At:       e.Clock.Now(),
			}
			if err := submit(fb); err != nil {
				if e.Faults.Enabled() {
					res.LostSubmits++ // degraded, not fatal: the round goes on
				} else {
					return res, fmt.Errorf("experiment: submit: %w", err)
				}
			}
		}
		if t, ok := mech.(core.Ticker); ok {
			t.Tick(e.Clock.Now())
		}
		if opts.OnRound != nil {
			opts.OnRound(round)
		}
		for _, c := range e.churners {
			c.Step()
		}
		e.Clock.Advance(RoundDuration)
		res.RegretSeries = append(res.RegretSeries, roundRegret/float64(roundN))
	}

	res.MeanRegret = mean(res.RegretSeries)
	res.HitRate = float64(hits) / float64(selections)
	res.MAE = e.scoreMAE(mech)
	res.ConvergenceRound = convergenceRound(res.RegretSeries)
	res.Invocations = e.Fabric.Calls() - startCalls
	res.Faults = e.Fabric.Faults() - startFaults
	if cr, ok := mech.(core.CostReporter); ok {
		res.Messages = cr.MessageCount()
	}
	return res, nil
}

// bestFor returns the best oracle utility among published candidates. The
// scan over the spec population is memoized per (preference profile,
// category): the selection loop calls bestFor once per consumer per round,
// but consumers keep their profiles and the ground truth only changes
// through AddSpec/ReplaceSpec, so the O(rounds × consumers × services)
// oracle recompute collapses to one pass per distinct profile.
func (e *Env) bestFor(prefs qos.Preferences, category string) (float64, core.ServiceID) {
	key := oracleKey{prefs: prefsFingerprint(prefs), category: category}
	if hit, ok := e.oracle[key]; ok && hit.gen == e.specsGen {
		return hit.best, hit.id
	}
	best, id := math.Inf(-1), core.ServiceID("")
	for _, s := range e.Specs {
		if category != "" && s.Desc.Category != category {
			continue
		}
		if u := workload.TrueUtility(s, prefs); u > best {
			best, id = u, s.Desc.Service
		}
	}
	if e.oracle == nil {
		e.oracle = map[oracleKey]oracleEntry{}
	}
	e.oracle[key] = oracleEntry{gen: e.specsGen, best: best, id: id}
	return best, id
}

// prefsFingerprint renders a preference profile as a canonical string key:
// sorted metric order, exact (bit-preserving) weight encoding. Profiles
// with equal fingerprints yield identical utilities for every spec.
func prefsFingerprint(prefs qos.Preferences) string {
	ids := make([]qos.MetricID, 0, len(prefs))
	for id := range prefs { //lint:sorted key collection; qos.SortIDs orders them below
		ids = append(ids, id)
	}
	var b strings.Builder
	for _, id := range qos.SortIDs(ids) {
		b.WriteString(string(id))
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(prefs[id], 'x', -1, 64))
		b.WriteByte(';')
	}
	return b.String()
}

// scoreMAE compares global mechanism scores to true utilities under the
// base preference profile, over services the mechanism knows.
func (e *Env) scoreMAE(mech core.Mechanism) float64 {
	base := workload.BasePreferences()
	var sum float64
	n := 0
	for _, s := range e.Specs {
		tv, ok := mech.Score(core.Query{
			Subject: s.Desc.Service,
			Context: core.Context(s.Desc.Category),
			Facet:   core.FacetOverall,
		})
		if !ok {
			continue
		}
		sum += math.Abs(tv.Score - workload.TrueUtility(s, base))
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// convergenceRound finds the first round from which regret stays within
// 1.5× the final-quarter plateau.
func convergenceRound(series []float64) int {
	if len(series) < 4 {
		return -1
	}
	plateau := mean(series[len(series)*3/4:])
	bound := plateau*1.5 + 0.02
	for i := range series {
		ok := true
		for _, v := range series[i:] {
			if v > bound {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}
