package experiment

import (
	"fmt"

	"wstrust/internal/p2p"
	"wstrust/internal/simclock"
)

// A5 compares the two P-Grid constructions: the idealized central
// assignment (BuildPGrid) against the faithful pairwise-encounter
// bootstrap (BootstrapPGrid). The bootstrap pays construction messages the
// central assignment hand-waves away, but must deliver the same routing
// quality afterwards — an honest accounting of what "self-organizing"
// costs.
func A5(seed int64) (Report, error) {
	const nodes, bits, keys = 48, 3, 60
	type result struct {
		constructionMsgs int64
		routeMsgs        int64
		avgHops          float64
	}
	measure := func(build func(net *p2p.Network, ids []p2p.NodeID) (*p2p.PGrid, error)) (result, error) {
		net := p2p.NewNetwork()
		ids := make([]p2p.NodeID, nodes)
		for i := range ids {
			ids[i] = p2p.NodeID(fmt.Sprintf("n%03d", i))
		}
		g, err := build(net, ids)
		if err != nil {
			return result{}, err
		}
		var res result
		res.constructionMsgs = net.MessageCount()
		totalHops := 0
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("key-%d", k)
			if _, err := g.Store(ids[k%nodes], key, k); err != nil {
				return result{}, fmt.Errorf("store %s: %w", key, err)
			}
			_, hops, err := g.Route(ids[(k+13)%nodes], key)
			if err != nil {
				return result{}, fmt.Errorf("route %s: %w", key, err)
			}
			totalHops += hops
			vals, err := g.Lookup(ids[(k+29)%nodes], key)
			if err != nil || len(vals) == 0 {
				return result{}, fmt.Errorf("lookup %s failed: %v", key, err)
			}
		}
		res.routeMsgs = net.MessageCount() - res.constructionMsgs
		res.avgHops = float64(totalHops) / keys
		return res, nil
	}

	central, err := measure(func(net *p2p.Network, ids []p2p.NodeID) (*p2p.PGrid, error) {
		return p2p.BuildPGrid(net, ids, bits, simclock.Stream(seed, "a5-central"))
	})
	if err != nil {
		return Report{}, err
	}
	boot, err := measure(func(net *p2p.Network, ids []p2p.NodeID) (*p2p.PGrid, error) {
		g, _, err := p2p.BootstrapPGrid(net, ids, bits, 900, simclock.Stream(seed, "a5-boot"))
		return g, err
	})
	if err != nil {
		return Report{}, err
	}

	body := Table([][]string{
		{"construction", "construction msgs", "ops msgs (60 keys)", "avg route hops"},
		{"central assignment (idealized)", FI(central.constructionMsgs), FI(central.routeMsgs), F(central.avgHops)},
		{"pairwise bootstrap (faithful)", FI(boot.constructionMsgs), FI(boot.routeMsgs), F(boot.avgHops)},
	})
	pass := boot.constructionMsgs > central.constructionMsgs &&
		boot.avgHops <= float64(bits) &&
		central.avgHops <= float64(bits)
	return Report{
		ID:    "A5",
		Title: "Ablation: P-Grid construction — central assignment vs pairwise bootstrap",
		PaperClaim: "P-Grid self-organizes through pairwise encounters; the construction itself is part of " +
			"the communication bill the survey attributes to decentralized designs",
		Body: body,
		Shape: fmt.Sprintf("bootstrap pays %d construction messages (central: %d) for the same ≤%d-hop routing (%.2f vs %.2f avg hops)",
			boot.constructionMsgs, central.constructionMsgs, bits, boot.avgHops, central.avgHops),
		Pass: pass,
		Data: map[string]float64{
			"central_construction": float64(central.constructionMsgs),
			"boot_construction":    float64(boot.constructionMsgs),
			"central_hops":         central.avgHops,
			"boot_hops":            boot.avgHops,
		},
	}, nil
}
