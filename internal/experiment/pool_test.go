package experiment

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPopulationsInlineWithoutPool checks the sequential path: with no
// suite pool installed, every replicate runs on the caller, in order.
func TestPopulationsInlineWithoutPool(t *testing.T) {
	suitePool.Store(nil)
	var order []int
	err := Populations(5, func(rep int) error {
		order = append(order, rep)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("inline replicates ran out of order: %v", order)
		}
	}
}

// TestPopulationsLowestIndexError checks error selection is positional,
// not completion-ordered: replicate 1's error wins over replicate 3's.
func TestPopulationsLowestIndexError(t *testing.T) {
	suitePool.Store(newWorkPool(4))
	defer suitePool.Store(nil)
	want := errors.New("rep 1 failed")
	err := Populations(5, func(rep int) error {
		switch rep {
		case 1:
			return want
		case 3:
			return errors.New("rep 3 failed")
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
}

// TestPopulationsSharesPoolBudget checks the semaphore invariant behind
// nested fan-out: replicates running concurrently never exceed the
// helper tokens available plus the caller itself.
func TestPopulationsSharesPoolBudget(t *testing.T) {
	const budget = 3
	suitePool.Store(newWorkPool(budget))
	defer suitePool.Store(nil)
	var running, peak atomic.Int64
	err := Populations(16, func(rep int) error {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for i := 0; i < 1000; i++ { // widen the overlap window
			_ = fmt.Sprintf("%d", i)
		}
		running.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// budget helper tokens + the caller running its own replicates.
	if got := peak.Load(); got > budget+1 {
		t.Fatalf("peak concurrency %d exceeds pool budget %d + caller", got, budget)
	}
}

// TestPopulationsConcurrentCallers hammers one shared pool from many
// goroutines, mirroring several experiments fanning out replicates at
// once inside a parallel suite run; run with -race.
func TestPopulationsConcurrentCallers(t *testing.T) {
	suitePool.Store(newWorkPool(4))
	defer suitePool.Store(nil)
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sums := make([]int, 9)
			if err := Populations(len(sums), func(rep int) error {
				sums[rep] = rep * rep
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			for i, s := range sums {
				if s != i*i {
					t.Errorf("replicate %d wrote %d", i, s)
					return
				}
			}
		}()
	}
	wg.Wait()
}
