package experiment

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"
)

// Report is one experiment's rendered outcome plus machine-readable data.
type Report struct {
	// ID is the experiment identifier from DESIGN.md (F1..F4, C1..C9).
	ID string
	// Title is the human headline.
	Title string
	// PaperClaim restates what the paper says should happen.
	PaperClaim string
	// Body is the rendered table/series output.
	Body string
	// Shape is the one-line measured verdict ("reputation < advertised <
	// random", crossover points, factors).
	Shape string
	// Pass reports whether the measured shape matches the paper's claim.
	Pass bool
	// Data holds named scalar results for EXPERIMENTS.md and tests.
	Data map[string]float64
}

// String renders the full report block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	b.WriteString(r.Body)
	if !strings.HasSuffix(r.Body, "\n") {
		b.WriteByte('\n')
	}
	verdict := "MATCH"
	if !r.Pass {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(&b, "measured: %s  [%s]\n", r.Shape, verdict)
	return b.String()
}

// Table renders rows with aligned columns; the first row is the header.
func Table(rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	for i, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
		if i == 0 {
			under := make([]string, len(row))
			for j, cell := range row {
				under[j] = strings.Repeat("-", len(cell))
			}
			fmt.Fprintln(w, strings.Join(under, "\t"))
		}
	}
	_ = w.Flush()
	return b.String()
}

// F formats a float for tables.
func F(x float64) string {
	if math.IsNaN(x) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", x)
}

// FI formats an int-ish float.
func FI(x int64) string { return fmt.Sprintf("%d", x) }

// Sparkline renders a series as a compact ASCII curve for convergence
// figures.
func Sparkline(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := series[0], series[0]
	for _, v := range series {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range series {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return fmt.Sprintf("%s  (min %.3f, max %.3f)", b.String(), lo, hi)
}
