package attack

import (
	"math"
	"testing"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
)

func TestHonest(t *testing.T) {
	if got := (Honest{}).Distort("c", "s", 0.7); got != 0.7 {
		t.Fatalf("honest distorted: %g", got)
	}
}

func TestBadmouth(t *testing.T) {
	all := Badmouth{}
	if got := all.Distort("c", "s", 0.9); got > 0.1 {
		t.Fatalf("badmouth-all = %g", got)
	}
	targeted := Badmouth{Targets: map[core.EntityID]bool{"s-victim": true}}
	if got := targeted.Distort("c", "s-victim", 0.9); got > 0.1 {
		t.Fatalf("targeted badmouth = %g", got)
	}
	if got := targeted.Distort("c", "s-other", 0.9); got != 0.9 {
		t.Fatalf("non-target distorted: %g", got)
	}
}

func TestBallotStuff(t *testing.T) {
	b := BallotStuff{Allies: map[core.EntityID]bool{"s-ally": true}}
	if got := b.Distort("c", "s-ally", 0.1); got < 0.9 {
		t.Fatalf("ally not pumped: %g", got)
	}
	if got := b.Distort("c", "s-other", 0.1); got != 0.1 {
		t.Fatalf("non-ally distorted: %g", got)
	}
}

func TestCollusion(t *testing.T) {
	c := Collusion{Allies: map[core.EntityID]bool{"s-ally": true}}
	if got := c.Distort("c", "s-ally", 0.5); got < 0.9 {
		t.Fatalf("ally = %g", got)
	}
	if got := c.Distort("c", "s-rival", 0.5); got > 0.1 {
		t.Fatalf("rival = %g", got)
	}
}

func TestComplementary(t *testing.T) {
	if got := (Complementary{}).Distort("c", "s", 0.8); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("complementary = %g", got)
	}
}

func TestRandomInRange(t *testing.T) {
	r := Random{Rng: simclock.NewRand(1)}
	for i := 0; i < 100; i++ {
		if got := r.Distort("c", "s", 0.5); got < 0 || got > 1 {
			t.Fatalf("random out of range: %g", got)
		}
	}
}

func TestWhitewasherIdentityCycles(t *testing.T) {
	w := NewWhitewasher(Honest{}, 3)
	var ids []core.ConsumerID
	for i := 0; i < 7; i++ {
		ids = append(ids, w.IdentityOf("c001"))
	}
	// First 3 under the original identity, next 3 under -w1, then -w2.
	if ids[0] != "c001" || ids[2] != "c001" {
		t.Fatalf("generation 0 ids = %v", ids[:3])
	}
	if ids[3] != "c001-w1" || ids[5] != "c001-w1" {
		t.Fatalf("generation 1 ids = %v", ids[3:6])
	}
	if ids[6] != "c001-w2" {
		t.Fatalf("generation 2 id = %v", ids[6])
	}
	if w.Name() != "whitewash+honest" {
		t.Fatalf("name = %q", w.Name())
	}
}

func TestWhitewasherDefaults(t *testing.T) {
	w := NewWhitewasher(nil, 0)
	if w.Period != 5 {
		t.Fatalf("default period = %d", w.Period)
	}
	if got := w.Distort("c", "s", 0.6); got != 0.6 {
		t.Fatalf("default inner distorted: %g", got)
	}
}

func TestAssign(t *testing.T) {
	consumers := []core.ConsumerID{"c1", "c2", "c3", "c4"}
	a := Assign(consumers, 0.5, Badmouth{})
	if a.LiarCount() != 2 {
		t.Fatalf("liar count = %d", a.LiarCount())
	}
	if !a.IsLiar("c1") || !a.IsLiar("c2") || a.IsLiar("c3") {
		t.Fatalf("assignment = %v", a)
	}
	if got := a.Distort("c1", "s", 0.9); got > 0.1 {
		t.Fatalf("assigned liar honest: %g", got)
	}
	if got := a.Distort("c3", "s", 0.9); got != 0.9 {
		t.Fatalf("honest consumer distorted: %g", got)
	}
	// Edge cases.
	if Assign(consumers, 0, Badmouth{}).LiarCount() != 0 {
		t.Fatal("zero fraction assigned liars")
	}
	if Assign(consumers, 2, Badmouth{}).LiarCount() != 4 {
		t.Fatal("overflow fraction not clamped")
	}
	if Assign(consumers, 0.5, nil).LiarCount() != 0 {
		t.Fatal("nil liar assigned")
	}
}

func TestFabricateObservationBadmouthing(t *testing.T) {
	obs := qos.Observation{
		Success: true,
		Values: qos.Vector{
			qos.ResponseTime: 100, qos.Throughput: 80, qos.Accuracy: 0.9,
		},
	}
	forged := FabricateObservation(obs, 0.8, 0.1) // lies downward
	if forged.Values[qos.ResponseTime] <= 100 {
		t.Fatalf("badmouth forgery did not worsen response time: %g", forged.Values[qos.ResponseTime])
	}
	if forged.Values[qos.Throughput] >= 80 {
		t.Fatalf("badmouth forgery did not worsen throughput: %g", forged.Values[qos.Throughput])
	}
	if forged.Values[qos.Accuracy] >= 0.9 {
		t.Fatalf("badmouth forgery did not worsen accuracy: %g", forged.Values[qos.Accuracy])
	}
	// Original untouched.
	if obs.Values[qos.ResponseTime] != 100 {
		t.Fatal("forgery mutated the original observation")
	}
}

func TestFabricateObservationBallotStuffing(t *testing.T) {
	obs := qos.Observation{
		Success: true,
		Values:  qos.Vector{qos.ResponseTime: 400, qos.Accuracy: 0.3},
	}
	forged := FabricateObservation(obs, 0.2, 0.95) // lies upward
	if forged.Values[qos.ResponseTime] >= 400 {
		t.Fatalf("stuffing forgery did not improve response time: %g", forged.Values[qos.ResponseTime])
	}
	if forged.Values[qos.Accuracy] <= 0.3 {
		t.Fatalf("stuffing forgery did not improve accuracy: %g", forged.Values[qos.Accuracy])
	}
	if forged.Values[qos.Accuracy] > 1 {
		t.Fatalf("score metric exceeded 1: %g", forged.Values[qos.Accuracy])
	}
}

func TestFabricateObservationNoOpCases(t *testing.T) {
	obs := qos.Observation{Success: true, Values: qos.Vector{qos.ResponseTime: 100}}
	// Honest verdict (gap below threshold): untouched.
	same := FabricateObservation(obs, 0.8, 0.82)
	if same.Values[qos.ResponseTime] != 100 {
		t.Fatal("near-honest report forged")
	}
	// Failed invocations carry nothing to forge.
	failed := qos.Observation{Success: false}
	if got := FabricateObservation(failed, 0.8, 0.1); got.Success {
		t.Fatal("failure flag changed")
	}
}

func TestLiarNames(t *testing.T) {
	tests := []struct {
		liar Liar
		want string
	}{
		{Honest{}, "honest"},
		{Badmouth{}, "badmouth"},
		{BallotStuff{}, "ballot-stuff"},
		{Collusion{}, "collusion"},
		{Complementary{}, "complementary"},
		{Random{Rng: simclock.NewRand(1)}, "random"},
	}
	for _, tc := range tests {
		if got := tc.liar.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}
