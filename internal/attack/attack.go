// Package attack models the dishonest-feedback behaviours the paper's
// Section 3.1 worries about ("some users may provide false feedback to
// badmouth or raise the reputation of a service on purpose") plus the
// classic identity attacks of the cited literature: badmouthing, ballot
// stuffing, collusion cliques, random lying, complementary lying, and
// whitewashing (identity reset).
//
// A Liar transforms the honest rating a consumer *would* give into the
// rating it actually reports; the experiment harness assigns liars to a
// configurable fraction of the consumer population.
package attack

import (
	"fmt"
	"math"
	"math/rand"

	"wstrust/internal/core"
	"wstrust/internal/qos"
)

// Liar distorts honest ratings.
type Liar interface {
	// Name identifies the attack for reports.
	Name() string
	// Distort maps the honest rating to the reported rating.
	Distort(rater core.ConsumerID, subject core.EntityID, honest float64) float64
}

// Honest reports truthfully; the null attack.
type Honest struct{}

// Name implements Liar.
func (Honest) Name() string { return "honest" }

// Distort implements Liar.
func (Honest) Distort(_ core.ConsumerID, _ core.EntityID, honest float64) float64 { return honest }

// Badmouth reports the minimum rating about its targets (all subjects when
// Targets is nil) and truthfully about everything else — the attack on a
// competitor's reputation.
type Badmouth struct {
	Targets map[core.EntityID]bool
}

// Name implements Liar.
func (Badmouth) Name() string { return "badmouth" }

// Distort implements Liar.
func (b Badmouth) Distort(_ core.ConsumerID, subject core.EntityID, honest float64) float64 {
	if b.Targets == nil || b.Targets[subject] {
		return 0.02
	}
	return honest
}

// BallotStuff reports the maximum rating about its allies (all subjects
// when Allies is nil) — the self-promotion attack.
type BallotStuff struct {
	Allies map[core.EntityID]bool
}

// Name implements Liar.
func (BallotStuff) Name() string { return "ballot-stuff" }

// Distort implements Liar.
func (b BallotStuff) Distort(_ core.ConsumerID, subject core.EntityID, honest float64) float64 {
	if b.Allies == nil || b.Allies[subject] {
		return 0.98
	}
	return honest
}

// Collusion is the combined clique attack: pump the allies, trash everyone
// else.
type Collusion struct {
	Allies map[core.EntityID]bool
}

// Name implements Liar.
func (Collusion) Name() string { return "collusion" }

// Distort implements Liar.
func (c Collusion) Distort(_ core.ConsumerID, subject core.EntityID, _ float64) float64 {
	if c.Allies[subject] {
		return 0.98
	}
	return 0.02
}

// Complementary inverts the honest rating — the strongest consistent liar,
// used by Zhang & Cohen's evaluations.
type Complementary struct{}

// Name implements Liar.
func (Complementary) Name() string { return "complementary" }

// Distort implements Liar.
func (Complementary) Distort(_ core.ConsumerID, _ core.EntityID, honest float64) float64 {
	return math.Max(0, math.Min(1, 1-honest))
}

// Random reports uniform noise — the incoherent liar, hardest to detect by
// consistency but least damaging.
type Random struct {
	Rng *rand.Rand
}

// Name implements Liar.
func (Random) Name() string { return "random" }

// Distort implements Liar.
func (r Random) Distort(_ core.ConsumerID, _ core.EntityID, _ float64) float64 {
	return r.Rng.Float64()
}

// Whitewasher cycles through fresh identities every Period reports,
// defeating mechanisms without newcomer suspicion. It wraps rating
// behaviour (honest or another Liar) and rewrites the rater identity.
type Whitewasher struct {
	Inner  Liar
	Period int
	seen   map[core.ConsumerID]int
}

// NewWhitewasher wraps inner, resetting identity every period reports.
func NewWhitewasher(inner Liar, period int) *Whitewasher {
	if inner == nil {
		inner = Honest{}
	}
	if period <= 0 {
		period = 5
	}
	return &Whitewasher{Inner: inner, Period: period, seen: map[core.ConsumerID]int{}}
}

// Name implements Liar.
func (w *Whitewasher) Name() string { return "whitewash+" + w.Inner.Name() }

// Distort implements Liar.
func (w *Whitewasher) Distort(rater core.ConsumerID, subject core.EntityID, honest float64) float64 {
	return w.Inner.Distort(rater, subject, honest)
}

// IdentityOf returns the identity the whitewasher currently reports under
// and advances its interaction counter.
func (w *Whitewasher) IdentityOf(rater core.ConsumerID) core.ConsumerID {
	n := w.seen[rater]
	w.seen[rater]++
	gen := n / w.Period
	if gen == 0 {
		return rater
	}
	return core.ConsumerID(fmt.Sprintf("%s-w%d", rater, gen))
}

// FabricateObservation forges the measured QoS values to back up a lied
// rating — the paper's dishonest reports carry fake QoS data, which is
// exactly what Vu et al.'s monitor comparison detects. The forged values
// shift every metric in the direction of the lie, proportionally to how
// far the reported verdict sits from the honest one.
func FabricateObservation(obs qos.Observation, honestOverall, reportedOverall float64) qos.Observation {
	gap := reportedOverall - honestOverall
	if math.Abs(gap) < 0.1 || !obs.Success {
		return obs
	}
	// gap < 0: badmouthing — make everything look worse; gap > 0: the
	// reverse. Factor 1+3|gap| moves metrics up to 4× in the lie's favor.
	factor := 1 + 3*math.Abs(gap)
	forged := qos.Observation{At: obs.At, Success: obs.Success, Values: qos.Vector{}}
	for _, id := range obs.Values.IDs() {
		v := obs.Values[id]
		worse := qos.PolarityOf(id) == qos.LowerBetter // higher raw = worse
		switch {
		case gap < 0 && worse:
			v *= factor
		case gap < 0 && !worse:
			v /= factor
		case gap > 0 && worse:
			v /= factor
		default:
			v *= factor
		}
		if m, ok := qos.Lookup(id); ok && (m.Unit == "ratio" || m.Unit == "score") {
			v = math.Min(1, v)
		}
		forged.Values[id] = v
	}
	return forged
}

// Assignment maps consumers to their attack behaviour; consumers absent
// from the map are honest.
type Assignment map[core.ConsumerID]Liar

// Assign marks the first ⌈fraction·len(consumers)⌉ consumers (in the given
// order) as liars with the supplied behaviour. Deterministic by
// construction: the experiment seeds decide consumer order.
func Assign(consumers []core.ConsumerID, fraction float64, liar Liar) Assignment {
	out := Assignment{}
	if liar == nil || fraction <= 0 {
		return out
	}
	n := int(math.Ceil(fraction * float64(len(consumers))))
	if n > len(consumers) {
		n = len(consumers)
	}
	for _, c := range consumers[:n] {
		out[c] = liar
	}
	return out
}

// Distort applies the consumer's assigned behaviour (honest by default).
func (a Assignment) Distort(rater core.ConsumerID, subject core.EntityID, honest float64) float64 {
	if liar, ok := a[rater]; ok {
		return liar.Distort(rater, subject, honest)
	}
	return honest
}

// IsLiar reports whether the consumer has an assigned attack.
func (a Assignment) IsLiar(c core.ConsumerID) bool {
	_, ok := a[c]
	return ok
}

// LiarCount reports the number of assigned liars.
func (a Assignment) LiarCount() int { return len(a) }
