// Package replica turns the single-node registry into a primary/follower
// replication pair over HTTP — the availability tier the survey's central
// registry needs once one dead node must not take the serving tier down.
//
// The design is asynchronous WAL shipping, pulled by the follower:
//
//   - The primary mounts a Source (source.go): GET /wal/stream?from=<seq>
//     streams committed WAL frames in their wire format over a chunked
//     response, resuming from any acknowledged sequence number; a
//     follower that is empty or too far behind bootstraps first from
//     GET /replica/snapshot, an atomic checksummed transfer of the full
//     compacted state; GET /replica/status reports the primary's epoch,
//     sequence horizon and promotion history.
//
//   - The follower (follower.go) applies shipped frames through
//     registry.ApplyReplicated — the same durable group-commit path local
//     Submits take — so its on-disk WAL is byte-identical to the
//     primary's, frame for frame. Reads are served from the follower's
//     own copy-on-write views the whole time; when the primary is
//     unreachable the follower keeps serving its last-applied state
//     (bounded staleness, reported by Lag) and reconnects under
//     fault.Policy backoff gated by a resilience.Breaker.
//
// Failover is fencing-epoch based. Promoting a follower
// (registry.Promote, driven by wsxd POST /promote) opens a new epoch in
// its durable mark history; every frame is stamped with the epoch that
// wrote it. A deposed primary that rejoins as a follower of the new one
// is detected as diverged — its mark history or its log disagrees with
// the new primary's — and must wipe (registry.ResetReplica) and re-seed
// from a snapshot; conversely a follower refuses to sync from a source
// whose epoch is behind its own, so a fenced old primary can never drag
// a promoted node backwards. The chaos harness (internal/chaos) drives
// kill/corrupt/partition/rejoin schedules against these invariants.
package replica

import "wstrust/internal/registry"

// Status is the wire form of GET /replica/status: everything a follower
// needs to decide whether it can stream (same history, cursor within the
// horizon) or must bootstrap.
type Status struct {
	// Epoch is the source's current fencing epoch.
	Epoch uint64 `json:"epoch"`
	// LastSeq is the source's highest committed sequence number.
	LastSeq uint64 `json:"lastSeq"`
	// Records is the source's live record count.
	Records int `json:"records"`
	// Marks is the source's full promotion history.
	Marks []registry.EpochMark `json:"marks,omitempty"`
}
