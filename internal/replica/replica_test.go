package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wstrust/internal/core"
	"wstrust/internal/fault"
	"wstrust/internal/qos"
	"wstrust/internal/registry"
	"wstrust/internal/resilience"
	"wstrust/internal/simclock"
)

func fb(i int) core.Feedback {
	return core.Feedback{
		Consumer: core.ConsumerID(fmt.Sprintf("r%05d", i)),
		Service:  core.NewServiceID(i % 4),
		Provider: core.NewProviderID(i % 2),
		Context:  "replica-test",
		Observed: qos.Observation{
			Values:  qos.Vector{qos.ResponseTime: float64(100 + i)},
			Success: true,
			At:      simclock.Epoch.Add(time.Duration(i) * time.Minute),
		},
		Ratings: map[core.Facet]float64{core.FacetOverall: 0.5},
		At:      simclock.Epoch.Add(time.Duration(i) * time.Minute),
	}
}

func submitN(t *testing.T, s *registry.Store, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := s.Submit(fb(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

// newSource mounts a Source over a fresh in-memory store.
func newSource(t *testing.T, drain <-chan struct{}) (*registry.Store, *httptest.Server) {
	t.Helper()
	st := registry.NewStore()
	src := &Source{Store: st, Drain: drain}
	mux := http.NewServeMux()
	src.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return st, srv
}

// newFollower builds a Follower against primary with a virtual clock
// whose Sleep advances it — retries and breaker cooldowns elapse
// instantly and deterministically.
func newFollower(t *testing.T, primary string, st *registry.Store) (*Follower, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	f, err := New(Config{
		Primary: primary,
		Store:   st,
		Policy:  fault.Policy{MaxAttempts: 4, Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Multiplier: 2},
		Breaker: resilience.BreakerConfig{FailureThreshold: 3, Cooldown: 50 * time.Millisecond},
		Clock:   clock,
		Sleep:   func(d time.Duration) { clock.Advance(d) },
		Seed:    11,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, clock
}

func TestSourceStatusReportsPosition(t *testing.T) {
	st, srv := newSource(t, nil)
	submitN(t, st, 0, 12)
	if _, err := st.Promote(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/replica/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || got.LastSeq != 12 || got.Records != 12 || len(got.Marks) != 1 {
		t.Fatalf("status %+v, want epoch 1, seq 12, 12 records, 1 mark", got)
	}
	if resp.Header.Get("X-Replica-Epoch") != "1" || resp.Header.Get("X-Replica-Seq") != "12" {
		t.Fatalf("position headers %q/%q", resp.Header.Get("X-Replica-Epoch"), resp.Header.Get("X-Replica-Seq"))
	}
}

func TestStreamResumesFromAckedCursor(t *testing.T) {
	st, srv := newSource(t, nil)
	submitN(t, st, 0, 10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/wal/stream?from=6&fromEpoch=0&fence=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	readFrame := func() registry.Frame {
		t.Helper()
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		fr, err := registry.ParseWire(line[:len(line)-1])
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	// Catch-up: frames 7..10 stream immediately.
	for want := uint64(7); want <= 10; want++ {
		if fr := readFrame(); fr.Seq != want {
			t.Fatalf("got seq %d, want %d", fr.Seq, want)
		}
	}
	// Long poll: a new commit wakes the stream.
	submitN(t, st, 10, 11)
	if fr := readFrame(); fr.Seq != 11 {
		t.Fatalf("long poll delivered seq %d, want 11", fr.Seq)
	}
}

func TestStreamRefusalStatuses(t *testing.T) {
	st, srv := newSource(t, nil)
	submitN(t, st, 0, 5)
	get := func(q string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + "/wal/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}
	// Fenced follower: the source's epoch is behind the fence.
	if got := get("from=0&fromEpoch=0&fence=3"); got != http.StatusForbidden {
		t.Fatalf("fenced cursor got %d, want 403", got)
	}
	// Cursor beyond the source's horizon.
	if got := get("from=99&fromEpoch=0&fence=0"); got != http.StatusConflict {
		t.Fatalf("future cursor got %d, want 409", got)
	}
	// Cursor whose epoch disagrees with the mark history.
	if got := get("from=3&fromEpoch=2&fence=0"); got != http.StatusConflict {
		t.Fatalf("wrong-epoch cursor got %d, want 409", got)
	}
	if got := get("from=bogus"); got != http.StatusBadRequest {
		t.Fatalf("malformed cursor got %d, want 400", got)
	}
}

func TestDrainSeversStream(t *testing.T) {
	drain := make(chan struct{})
	st, srv := newSource(t, drain)
	submitN(t, st, 0, 3)
	resp, err := http.Get(srv.URL + "/wal/stream?from=0&fromEpoch=0&fence=0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 3; i++ {
		if _, err := br.ReadBytes('\n'); err != nil {
			t.Fatalf("catch-up frame %d: %v", i, err)
		}
	}
	// The stream is now parked in its long poll; drain must end it
	// cleanly (EOF), not hang it.
	close(drain)
	if _, err := br.ReadBytes('\n'); err == nil {
		t.Fatal("stream survived drain")
	}
}

func TestFollowerBootstrapsThenStreams(t *testing.T) {
	st, srv := newSource(t, nil)
	submitN(t, st, 0, 50)
	local := registry.NewStore()
	f, _ := newFollower(t, srv.URL, local)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	waitSeq := func(want uint64) {
		t.Helper()
		for i := 0; i < 5000; i++ {
			if local.LastSeq() >= want {
				return
			}
			simclock.SleepWall(time.Millisecond)
		}
		t.Fatalf("follower stuck at seq %d, want %d", local.LastSeq(), want)
	}
	// Initial catch-up goes through the snapshot transfer (empty store,
	// non-empty primary), then the stream.
	waitSeq(50)
	if local.Len() != 50 {
		t.Fatalf("bootstrapped %d records, want 50", local.Len())
	}
	// Live tail.
	submitN(t, st, 50, 60)
	waitSeq(60)
	if lag, contacted := f.Lag(); lag != 0 || !contacted {
		t.Fatalf("lag %d contacted %v after catch-up", lag, contacted)
	}
	if !f.Streaming() {
		t.Fatal("follower not streaming while tailing")
	}
	cancel()
	<-done
}

func TestFollowerServesStaleWhenPrimaryDies(t *testing.T) {
	st, srv := newSource(t, nil)
	submitN(t, st, 0, 20)
	local := registry.NewStore()
	f, _ := newFollower(t, srv.URL, local)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	for i := 0; i < 5000 && local.LastSeq() < 20; i++ {
		simclock.SleepWall(time.Millisecond)
	}
	// Primary dies: sever live connections first — Close alone waits for
	// the in-flight stream, which only ends on client disconnect.
	srv.CloseClientConnections()
	srv.Close()
	for i := 0; i < 5000 && f.Streaming(); i++ {
		simclock.SleepWall(time.Millisecond)
	}
	// Degraded, not dead: the local views still answer, the loop keeps
	// retrying through breaker and backoff without wiping anything.
	if local.Len() != 20 {
		t.Fatalf("stale reads lost records: %d, want 20", local.Len())
	}
	if f.Streaming() {
		t.Fatal("still reports streaming against a dead primary")
	}
	if _, contacted := f.Lag(); !contacted {
		t.Fatal("contacted flag lost after primary death")
	}
	cancel()
	<-done
}

func TestSyncOnceRefusesFencedSource(t *testing.T) {
	st, srv := newSource(t, nil)
	submitN(t, st, 0, 10)
	local := registry.NewStore()
	// The local store was promoted past the source's epoch: a deposed
	// primary must never feed it.
	if err := local.InstallMarks([]registry.EpochMark{{Epoch: 1, Start: 1}}); err != nil {
		t.Fatal(err)
	}
	f, _ := newFollower(t, srv.URL, local)
	err := f.syncOnce(context.Background())
	if !errors.Is(err, errFencedSource) {
		t.Fatalf("sync from deposed primary gave %v, want errFencedSource", err)
	}
	if local.Len() != 0 {
		t.Fatalf("fenced sync still applied %d records", local.Len())
	}
}

func TestSyncOnceReseedsDivergedLocal(t *testing.T) {
	st, srv := newSource(t, nil)
	submitN(t, st, 0, 30)
	local := registry.NewStore()
	// Divergent local history: more records than the primary has.
	submitN(t, local, 100, 140)
	f, _ := newFollower(t, srv.URL, local)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	for i := 0; i < 5000; i++ {
		if local.Len() == 30 && local.LastSeq() == 30 {
			break
		}
		simclock.SleepWall(time.Millisecond)
	}
	cancel()
	<-done
	if local.Len() != 30 || local.LastSeq() != 30 {
		t.Fatalf("diverged follower at %d records seq %d, want 30/30", local.Len(), local.LastSeq())
	}
	// The divergent records are gone — replaced by the primary's log.
	for _, got := range local.Consumers() {
		if got >= "r00100" {
			t.Fatalf("divergent record %s survived the re-seed", got)
		}
	}
}

func TestFollowerCallbacks(t *testing.T) {
	st, srv := newSource(t, nil)
	submitN(t, st, 0, 8)
	local := registry.NewStore()
	clock := simclock.NewVirtual()
	applied := make(chan int, 64)
	reseeded := make(chan struct{}, 4)
	f, err := New(Config{
		Primary: srv.URL,
		Store:   local,
		Clock:   clock,
		Sleep:   func(d time.Duration) { clock.Advance(d) },
		OnApply: func(fbs []core.Feedback) { applied <- len(fbs) },
		OnReseed: func() {
			select {
			case reseeded <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	select {
	case <-reseeded:
	case <-simclockTimeout(5 * time.Second):
		t.Fatal("bootstrap never reported through OnReseed")
	}
	submitN(t, st, 8, 11)
	total := 0
	for total < 3 {
		select {
		case n := <-applied:
			total += n
		case <-simclockTimeout(5 * time.Second):
			t.Fatalf("OnApply reported %d of 3 streamed records", total)
		}
	}
	cancel()
	<-done
}

// simclockTimeout is a wall-clock timeout channel for test waits.
func simclockTimeout(d time.Duration) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		simclock.SleepWall(d)
		close(ch)
	}()
	return ch
}

// TestSyncOnceSurfacesPrimaryErrors drives syncOnce against a fake
// primary to exercise the HTTP error paths a healthy Source never
// produces: non-200 status fetches with diagnostic bodies, a stream
// fenced at the transport level, and a cursor conflict that persists
// through the re-seed.
func TestSyncOnceSurfacesPrimaryErrors(t *testing.T) {
	t.Run("status error body", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "registry draining", http.StatusServiceUnavailable)
		}))
		defer srv.Close()
		f, _ := newFollower(t, srv.URL, registry.NewStore())
		err := f.syncOnce(context.Background())
		if err == nil || !strings.Contains(err.Error(), "registry draining") {
			t.Fatalf("error lost the diagnostic body: %v", err)
		}
	})
	t.Run("stream fenced at transport", func(t *testing.T) {
		donor := registry.NewStore()
		submitN(t, donor, 0, 5)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /replica/status", func(w http.ResponseWriter, r *http.Request) {
			writeStatus(t, w, donor)
		})
		mux.HandleFunc("GET /wal/stream", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "fenced", http.StatusForbidden)
		})
		srv := httptest.NewServer(mux)
		defer srv.Close()
		local := registry.NewStore()
		submitN(t, local, 0, 5)
		f, _ := newFollower(t, srv.URL, local)
		if err := f.syncOnce(context.Background()); !errors.Is(err, errFencedSource) {
			t.Fatalf("403 stream gave %v, want errFencedSource", err)
		}
	})
	t.Run("persistent cursor conflict", func(t *testing.T) {
		donor := registry.NewStore()
		submitN(t, donor, 0, 5)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /replica/status", func(w http.ResponseWriter, r *http.Request) {
			writeStatus(t, w, donor)
		})
		mux.HandleFunc("GET /replica/snapshot", func(w http.ResponseWriter, r *http.Request) {
			if _, _, err := donor.WriteSnapshotTo(w); err != nil {
				t.Error(err)
			}
		})
		mux.HandleFunc("GET /wal/stream", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "cursor beyond horizon", http.StatusConflict)
		})
		srv := httptest.NewServer(mux)
		defer srv.Close()
		local := registry.NewStore()
		submitN(t, local, 0, 5)
		f, _ := newFollower(t, srv.URL, local)
		err := f.syncOnce(context.Background())
		// The 409 triggers one re-seed; a second 409 is surfaced, not
		// looped on.
		if !errors.Is(err, errDiverged) {
			t.Fatalf("persistent 409 gave %v, want errDiverged", err)
		}
		if local.Len() != 5 {
			t.Fatalf("re-seed left %d records, want the donor's 5", local.Len())
		}
	})
}

func writeStatus(t *testing.T, w http.ResponseWriter, st *registry.Store) {
	t.Helper()
	if err := json.NewEncoder(w).Encode(Status{
		Epoch:   st.Epoch(),
		LastSeq: st.LastSeq(),
		Records: st.Len(),
		Marks:   st.Marks(),
	}); err != nil {
		t.Error(err)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Primary: "http://x"}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(Config{Store: registry.NewStore()}); err == nil {
		t.Fatal("empty primary accepted")
	}
}
