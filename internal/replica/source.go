package replica

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"wstrust/internal/registry"
)

// Source is the primary side of replication: three HTTP handlers mounted
// on a registry-backed server. Every read serves from the store's
// immutable copy-on-write views, so shipping frames never contends with
// the write path.
type Source struct {
	// Store is the registry being replicated.
	Store *registry.Store
	// Drain, when non-nil, severs every open stream when closed — wsxd's
	// graceful drain. A severed follower resumes from its last acked
	// sequence number on reconnect; nothing is lost.
	Drain <-chan struct{}
	// MaxBatch bounds the frames rendered per stream write (default 512).
	MaxBatch int
}

// Register mounts the replication endpoints on mux.
func (src *Source) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /replica/status", src.handleStatus)
	mux.HandleFunc("GET /replica/snapshot", src.handleSnapshot)
	mux.HandleFunc("GET /wal/stream", src.handleStream)
}

// setEpochHeaders stamps a response with the source's replication
// position, so even error responses tell the follower where the source
// stands.
func (src *Source) setEpochHeaders(w http.ResponseWriter) {
	w.Header().Set("X-Replica-Epoch", strconv.FormatUint(src.Store.Epoch(), 10))
	w.Header().Set("X-Replica-Seq", strconv.FormatUint(src.Store.LastSeq(), 10))
}

// handleStatus reports the source's epoch, horizon and mark history.
func (src *Source) handleStatus(w http.ResponseWriter, r *http.Request) {
	src.setEpochHeaders(w)
	w.Header().Set("Content-Type", "application/json")
	st := Status{
		Epoch:   src.Store.Epoch(),
		LastSeq: src.Store.LastSeq(),
		Records: src.Store.Len(),
		Marks:   src.Store.Marks(),
	}
	if err := json.NewEncoder(w).Encode(st); err != nil {
		// The response is already committed; nothing to do but note it.
		return
	}
}

// handleSnapshot transfers the full state as one checksummed snapshot
// document — the bootstrap path for an empty or diverged follower. The
// document is rendered from one consistent view; the follower verifies
// the body checksum before applying anything.
func (src *Source) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	src.setEpochHeaders(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, _, err := src.Store.WriteSnapshotTo(w); err != nil {
		// Mid-body failure: the connection is the error signal (the
		// follower's checksum verification rejects the partial document).
		return
	}
}

// handleStream is the WAL tailer: it streams committed frames with
// sequence numbers > from in wire format over a chunked response,
// flushing after every batch, and blocks on the store's commit broadcast
// when caught up — a long poll that ends only when the client goes away,
// the server drains, or the follower's cursor proves incompatible.
//
// Query parameters: from (cursor — last sequence the follower holds),
// fromEpoch (the epoch the follower's mark history assigns to that
// cursor), fence (the follower's own epoch). Responses:
//
//	403 — the follower is fenced ahead of this source (fence > epoch):
//	      a deposed primary must not feed a promoted follower.
//	409 — the cursor diverged: it is beyond this source's horizon, below
//	      its compaction horizon, or its epoch disagrees with the
//	      source's mark history. The follower must re-seed from snapshot.
func (src *Source) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad from cursor", http.StatusBadRequest)
		return
	}
	fromEpoch, err := strconv.ParseUint(q.Get("fromEpoch"), 10, 64)
	if err != nil && q.Get("fromEpoch") != "" {
		http.Error(w, "bad fromEpoch", http.StatusBadRequest)
		return
	}
	fence, err := strconv.ParseUint(q.Get("fence"), 10, 64)
	if err != nil && q.Get("fence") != "" {
		http.Error(w, "bad fence", http.StatusBadRequest)
		return
	}
	src.setEpochHeaders(w)
	if fence > src.Store.Epoch() {
		http.Error(w, fmt.Sprintf("fenced: follower epoch %d is ahead of source epoch %d", fence, src.Store.Epoch()),
			http.StatusForbidden)
		return
	}
	if from > src.Store.LastSeq() {
		http.Error(w, fmt.Sprintf("diverged: cursor %d is beyond source seq %d", from, src.Store.LastSeq()),
			http.StatusConflict)
		return
	}
	if from > 0 {
		if want := src.Store.EpochAt(from); want != fromEpoch {
			http.Error(w, fmt.Sprintf("diverged: cursor %d is epoch %d here, follower says %d", from, want, fromEpoch),
				http.StatusConflict)
			return
		}
	}

	maxBatch := src.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 512
	}
	flusher, _ := w.(http.Flusher)
	// Commit the 200 and push the headers out before the first frame (or
	// the long-poll park): the follower flips to streaming state when the
	// response arrives, which must not wait for the next commit.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	cur := from
	var buf []byte
	for {
		// Grab the broadcast channel before reading frames: a commit that
		// lands between the read and the select closes this channel, so
		// no wakeup is lost.
		updates := src.Store.Updates()
		frames, err := src.Store.FramesSince(cur, maxBatch)
		if err != nil {
			// Horizon moved under the cursor (compaction after an
			// experiment Reset) — sever; the follower re-syncs.
			return
		}
		if len(frames) > 0 {
			buf = buf[:0]
			for i := range frames {
				buf = frames[i].AppendWire(buf)
			}
			if _, err := w.Write(buf); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			cur = frames[len(frames)-1].Seq
			continue
		}
		select {
		case <-updates:
		case <-r.Context().Done():
			return
		case <-src.drain():
			return
		}
	}
}

// drain returns the drain channel, or a nil channel (blocks forever) when
// the source has none.
func (src *Source) drain() <-chan struct{} { return src.Drain }
