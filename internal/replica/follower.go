package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"wstrust/internal/core"
	"wstrust/internal/fault"
	"wstrust/internal/registry"
	"wstrust/internal/resilience"
	"wstrust/internal/simclock"
)

// errDiverged marks a sync attempt that found the local log incompatible
// with the primary's (409 from the stream, or a local state mismatch):
// the follower must wipe and re-seed from a snapshot.
var errDiverged = errors.New("replica: local log diverged from primary")

// errFencedSource marks a primary whose epoch is behind the follower's
// own — a deposed primary. The follower refuses to sync from it: syncing
// would hand a fenced node's divergent history to a promoted replica.
var errFencedSource = errors.New("replica: source epoch is behind local fence")

// Config assembles a Follower. Store and Primary are required; everything
// else defaults sanely for a daemon (wall clock, real sleep, default
// retry policy and breaker).
type Config struct {
	// Primary is the base URL of the node to follow.
	Primary string
	// Store is the local registry replicated into.
	Store *registry.Store
	// Client issues the HTTP requests (default http.DefaultClient; the
	// daemon passes one with timeouts on the control fetches).
	Client *http.Client
	// Policy is the reconnect backoff schedule, ridden between failed
	// sync attempts (default fault.DefaultPolicy).
	Policy fault.Policy
	// Breaker gates sync attempts so a dead primary costs one probe per
	// cooldown instead of a tight retry loop.
	Breaker resilience.BreakerConfig
	// Clock times the breaker cooldowns and control-fetch budgets
	// (default simclock.Wall). Tests pair a Virtual clock with a Sleep
	// that advances it.
	Clock simclock.Clock
	// Sleep blocks between sync attempts (default simclock.SleepWall).
	Sleep func(time.Duration)
	// Seed feeds the jittered backoff schedule and breaker jitter.
	Seed int64
	// FetchTimeout budgets each control fetch — status and snapshot
	// (default 30s). The stream itself has no deadline; it is severed by
	// context cancellation or the primary going away.
	FetchTimeout time.Duration
	// BatchApply bounds the frames applied per durable group commit when
	// the stream delivers a backlog (default 256).
	BatchApply int
	// OnApply, when non-nil, observes every batch of replicated records
	// after it lands — wsxd feeds its mechanism state and rank-session
	// invalidation from this.
	OnApply func([]core.Feedback)
	// OnReseed, when non-nil, runs after a snapshot bootstrap replaced
	// the whole local state (the incremental OnApply feed does not cover
	// it) — wsxd rebuilds its mechanism from the store here.
	OnReseed func()
	// Logf, when non-nil, receives progress lines (bootstrap, fence
	// refusals, stream severs).
	Logf func(format string, args ...any)
}

// Follower replicates a primary into the local store. Run drives the
// loop; the accessors are safe from any goroutine.
type Follower struct {
	cfg     Config
	breaker *resilience.Breaker
	backoff []time.Duration

	primarySeq atomic.Uint64 // highest sequence the primary reported
	contacted  atomic.Bool   // a status fetch has succeeded at least once
	streaming  atomic.Bool   // a stream is currently open
}

// New builds a Follower from cfg, filling defaults.
func New(cfg Config) (*Follower, error) {
	if cfg.Store == nil {
		return nil, errors.New("replica: Config.Store is required")
	}
	if _, err := url.Parse(cfg.Primary); err != nil || cfg.Primary == "" {
		return nil, fmt.Errorf("replica: bad primary URL %q", cfg.Primary)
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Wall()
	}
	if cfg.Sleep == nil {
		cfg.Sleep = simclock.SleepWall
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 30 * time.Second
	}
	if cfg.BatchApply <= 0 {
		cfg.BatchApply = 256
	}
	if cfg.Policy.MaxAttempts < 1 {
		cfg.Policy = fault.DefaultPolicy()
	}
	f := &Follower{
		cfg:     cfg,
		breaker: resilience.NewBreaker(cfg.Breaker, cfg.Clock, simclock.Stream(cfg.Seed, "replica.breaker")),
	}
	f.backoff = cfg.Policy.Schedule(cfg.Seed)
	if len(f.backoff) == 0 {
		f.backoff = fault.DefaultPolicy().Schedule(cfg.Seed)
	}
	f.primarySeq.Store(cfg.Store.LastSeq())
	return f, nil
}

// Lag reports how many records the follower is behind the primary's last
// known position, and whether the primary has ever been contacted (false
// means the lag is a lower bound from the local state alone).
func (f *Follower) Lag() (records uint64, contacted bool) {
	local := f.cfg.Store.LastSeq()
	primary := f.primarySeq.Load()
	if primary > local {
		records = primary - local
	}
	return records, f.contacted.Load()
}

// Streaming reports whether a WAL stream is currently open to the
// primary — false while degraded to serving stale reads.
func (f *Follower) Streaming() bool { return f.streaming.Load() }

// Run drives the replication loop until ctx is cancelled: sync attempts
// through the breaker, the Policy's jittered backoff schedule between
// failures (restarting from the top after any successful stream), stale
// reads served by the store's views throughout. Run never returns an
// error — a follower degrades, it does not die.
func (f *Follower) Run(ctx context.Context) {
	attempt := 0
	for ctx.Err() == nil {
		err := f.breaker.Do(func() error { return f.syncOnce(ctx) })
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			// The stream ended cleanly (primary drained or severed after
			// feeding us); reconnect promptly.
			attempt = 0
			continue
		}
		if !errors.Is(err, resilience.ErrOpen) {
			f.logf("replica: sync: %v", err)
		}
		d := f.backoff[attempt%len(f.backoff)]
		if attempt < len(f.backoff) {
			attempt++
		}
		f.cfg.Sleep(d)
	}
}

// syncOnce performs one full sync attempt: fetch status, refuse fenced
// sources, adopt the primary's mark history, bootstrap from snapshot when
// empty or diverged, then stream frames until the connection ends. A nil
// return means frames flowed and the stream ended cleanly.
func (f *Follower) syncOnce(ctx context.Context) error {
	st, err := f.fetchStatus(ctx)
	if err != nil {
		return err
	}
	f.contacted.Store(true)
	if st.LastSeq > f.primarySeq.Load() {
		f.primarySeq.Store(st.LastSeq)
	}
	// Fence check first: a deposed primary must be refused before any
	// divergence handling could talk us into wiping local state.
	if st.Epoch < f.cfg.Store.Epoch() {
		return fmt.Errorf("%w: source %d < local %d", errFencedSource, st.Epoch, f.cfg.Store.Epoch())
	}
	if err := f.adopt(ctx, st); err != nil {
		return err
	}
	err = f.stream(ctx)
	if errors.Is(err, errDiverged) {
		// The cursor check failed server-side; re-seed and stream again.
		if err := f.bootstrap(ctx, st); err != nil {
			return err
		}
		err = f.stream(ctx)
	}
	return err
}

// adopt brings local replication state in line with the primary's status:
// install its mark history (prefix-extension only) and bootstrap from a
// snapshot when the local store is empty, behind a compaction horizon, or
// provably diverged. Mark-history conflicts are divergence, not failure.
func (f *Follower) adopt(ctx context.Context, st Status) error {
	diverged := false
	if err := f.cfg.Store.InstallMarks(st.Marks); err != nil {
		if !errors.Is(err, registry.ErrFenced) {
			return err
		}
		f.logf("replica: mark history diverged: %v", err)
		diverged = true
	}
	local := f.cfg.Store.LastSeq()
	if local > st.LastSeq {
		f.logf("replica: local seq %d is beyond primary %d: diverged", local, st.LastSeq)
		diverged = true
	}
	if diverged || (local == 0 && st.LastSeq > 0 && f.cfg.Store.Len() == 0) {
		return f.bootstrap(ctx, st)
	}
	return nil
}

// bootstrap wipes local state and re-seeds it from the primary's snapshot
// transfer — the initial catch-up for an empty follower and the recovery
// path for a diverged one. The transfer is checksummed end to end; a
// corrupt body is rejected before anything is applied.
func (f *Follower) bootstrap(ctx context.Context, st Status) error {
	budget := resilience.NewBudget(f.cfg.Clock, f.cfg.FetchTimeout)
	body, hdr, err := f.get(ctx, "/replica/snapshot", nil)
	if err != nil {
		return err
	}
	if budget.Exceeded() {
		return fmt.Errorf("replica: snapshot transfer exceeded %v budget", f.cfg.FetchTimeout)
	}
	if err := f.cfg.Store.ResetReplica(); err != nil {
		return err
	}
	// Marks install while the store is still empty: InstallMarks rejects
	// mark starts at or below the local sequence, and the seeded frames
	// carry their epochs in the document itself.
	if err := f.cfg.Store.InstallMarks(st.Marks); err != nil {
		return err
	}
	n, err := f.cfg.Store.SeedFromSnapshot(body)
	if err != nil {
		return err
	}
	f.logf("replica: bootstrapped %d records to seq %d (primary seq %s)", n, f.cfg.Store.LastSeq(), hdr.Get("X-Replica-Seq"))
	if f.cfg.OnReseed != nil {
		f.cfg.OnReseed()
	}
	return nil
}

// stream opens the WAL tail at the local cursor and applies frames in
// durable batches until the connection ends. 403 means we are fenced
// ahead of the source (error), 409 means the cursor diverged
// (errDiverged — caller re-seeds).
func (f *Follower) stream(ctx context.Context) error {
	store := f.cfg.Store
	from := store.LastSeq()
	q := url.Values{}
	q.Set("from", fmt.Sprint(from))
	q.Set("fromEpoch", fmt.Sprint(store.EpochAt(from)))
	q.Set("fence", fmt.Sprint(store.Epoch()))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+"/wal/stream?"+q.Encode(), nil)
	if err != nil {
		return fmt.Errorf("replica: stream request: %w", err)
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: stream: %w", err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			f.logf("replica: close stream body: %v", cerr)
		}
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusForbidden:
		return fmt.Errorf("%w: stream refused (source epoch %s)", errFencedSource, resp.Header.Get("X-Replica-Epoch"))
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", errDiverged, readErrorBody(resp.Body))
	default:
		return fmt.Errorf("replica: stream: unexpected status %s", resp.Status)
	}
	if seq, err := strconv.ParseUint(resp.Header.Get("X-Replica-Seq"), 10, 64); err == nil && seq > f.primarySeq.Load() {
		f.primarySeq.Store(seq)
	}

	f.streaming.Store(true)
	defer f.streaming.Store(false)
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	var batch []registry.Frame
	for {
		// Block for one frame, then drain whatever else is already
		// buffered (up to BatchApply) so a backlog lands in few group
		// commits instead of one fsync per frame.
		line, err := br.ReadBytes('\n')
		if err != nil {
			// EOF/severed: everything applied so far is durable; the
			// next attempt resumes from the acked cursor.
			if len(line) > 0 {
				f.logf("replica: stream severed mid-frame (%d bytes discarded)", len(line))
			}
			return nil
		}
		batch = batch[:0]
		fr, err := registry.ParseWire(line[:len(line)-1])
		if err != nil {
			return fmt.Errorf("replica: stream frame: %w", err)
		}
		batch = append(batch, fr)
		for len(batch) < f.cfg.BatchApply && br.Buffered() > 0 {
			line, err := br.ReadBytes('\n')
			if err != nil {
				break
			}
			fr, err := registry.ParseWire(line[:len(line)-1])
			if err != nil {
				return fmt.Errorf("replica: stream frame: %w", err)
			}
			batch = append(batch, fr)
		}
		fbs, err := store.ApplyReplicated(batch)
		if err != nil {
			if errors.Is(err, registry.ErrFenced) || errors.Is(err, registry.ErrSeqGap) {
				return fmt.Errorf("%w: %v", errDiverged, err)
			}
			return err
		}
		if last := batch[len(batch)-1].Seq; last > f.primarySeq.Load() {
			f.primarySeq.Store(last)
		}
		if f.cfg.OnApply != nil {
			f.cfg.OnApply(fbs)
		}
	}
}

// fetchStatus gets the primary's replication status under the fetch
// budget.
func (f *Follower) fetchStatus(ctx context.Context) (Status, error) {
	var st Status
	budget := resilience.NewBudget(f.cfg.Clock, f.cfg.FetchTimeout)
	body, _, err := f.get(ctx, "/replica/status", nil)
	if err != nil {
		return st, err
	}
	if budget.Exceeded() {
		return st, fmt.Errorf("replica: status fetch exceeded %v budget", f.cfg.FetchTimeout)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("replica: decode status: %w", err)
	}
	return st, nil
}

// get issues one GET against the primary and returns the body.
func (f *Follower) get(ctx context.Context, path string, q url.Values) ([]byte, http.Header, error) {
	u := f.cfg.Primary + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("replica: request %s: %w", path, err)
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("replica: %s: %w", path, err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			f.logf("replica: close %s body: %v", path, cerr)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.Header, fmt.Errorf("replica: %s: unexpected status %s: %s", path, resp.Status, readErrorBody(resp.Body))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.Header, fmt.Errorf("replica: read %s body: %w", path, err)
	}
	return body, resp.Header, nil
}

// logf forwards to the configured logger, if any.
func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// readErrorBody salvages a bounded error body for diagnostics.
func readErrorBody(r io.Reader) string {
	b, err := io.ReadAll(io.LimitReader(r, 256))
	if err != nil {
		return ""
	}
	return string(bytesTrim(b))
}

// bytesTrim drops trailing newlines from an error body.
func bytesTrim(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

