package fault

import (
	"sync/atomic"
	"time"

	"wstrust/internal/simclock"
)

// Policy is the shared transport retry/timeout/backoff policy the
// decentralized mechanisms run their remote operations under: a bounded
// number of delivery attempts with exponential, seed-jittered backoff in
// virtual time. In the fault-free case the first attempt always succeeds,
// so the policy never fires and per-mechanism message accounting is
// unchanged — which is exactly what the golden-report test enforces.
type Policy struct {
	// MaxAttempts is the total number of delivery attempts (≥ 1; 1 means
	// no retries at all).
	MaxAttempts int
	// Base is the nominal first backoff delay.
	Base time.Duration
	// Cap bounds every backoff delay.
	Cap time.Duration
	// Multiplier grows the nominal delay per retry (≥ 1).
	Multiplier float64
}

// DefaultPolicy is the retry policy the fault presets ship with: three
// attempts, 50ms nominal base, 2s cap, doubling.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 3, Base: 50 * time.Millisecond, Cap: 2 * time.Second, Multiplier: 2}
}

// normalized fills defaults so the zero value means "one attempt".
func (p Policy) normalized() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Cap < p.Base {
		p.Cap = p.Base
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// Schedule returns the policy's backoff schedule for a seed: one delay per
// retry (MaxAttempts-1 entries). Delays are exponentially growing with a
// seeded jitter in [½, 1] of the nominal value, clamped so the schedule is
// always monotone non-decreasing and bounded by Cap, and the same seed
// always yields the same schedule — the three invariants FuzzFaultPolicy
// hammers.
func (p Policy) Schedule(seed int64) []time.Duration {
	p = p.normalized()
	if p.MaxAttempts <= 1 {
		return nil
	}
	rng := simclock.Stream(seed, "fault.backoff")
	out := make([]time.Duration, 0, p.MaxAttempts-1)
	nominal := float64(p.Base)
	prev := time.Duration(0)
	for k := 0; k < p.MaxAttempts-1; k++ {
		d := nominal
		if d > float64(p.Cap) {
			d = float64(p.Cap)
		}
		jittered := time.Duration(d * (0.5 + 0.5*rng.Float64()))
		if jittered < prev {
			jittered = prev
		}
		if jittered > p.Cap {
			jittered = p.Cap
		}
		out = append(out, jittered)
		prev = jittered
		nominal *= p.Multiplier
	}
	return out
}

// Retrier binds a Policy to a virtual clock: it implements p2p.Retrier,
// advancing the clock by the scheduled backoff between attempts (the
// network never sleeps — backoff is simulated time, per the repo's
// determinism invariants). Safe for concurrent use.
type Retrier struct {
	attempts int
	sched    []time.Duration
	clock    *simclock.Virtual
	retries  atomic.Int64
	waited   atomic.Int64 // nanoseconds of virtual backoff
}

// Bind compiles the policy's schedule for seed and attaches it to clock.
// clock may be nil (backoff then costs no virtual time but attempts still
// bound retries).
func (p Policy) Bind(seed int64, clock *simclock.Virtual) *Retrier {
	n := p.normalized()
	return &Retrier{attempts: n.MaxAttempts, sched: p.Schedule(seed), clock: clock}
}

// Attempts implements p2p.Retrier.
func (r *Retrier) Attempts() int { return r.attempts }

// Backoff implements p2p.Retrier: retry number attempt (1-based) waits the
// scheduled delay in virtual time.
func (r *Retrier) Backoff(attempt int) {
	if len(r.sched) == 0 {
		return
	}
	i := attempt - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.sched) {
		i = len(r.sched) - 1
	}
	d := r.sched[i]
	if r.clock != nil {
		r.clock.Advance(d)
	}
	r.retries.Add(1)
	r.waited.Add(int64(d))
}

// Retries reports how many backoffs have fired.
func (r *Retrier) Retries() int64 { return r.retries.Load() }

// Waited reports the total virtual time spent backing off.
func (r *Retrier) Waited() time.Duration { return time.Duration(r.waited.Load()) }
