package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"wstrust/internal/p2p"
	"wstrust/internal/simclock"
)

// Stats is an injector's cumulative fault accounting.
type Stats struct {
	// Requests is the number of delivery attempts inspected.
	Requests int64
	// DroppedRequests and DroppedReplies count outright losses.
	DroppedRequests, DroppedReplies int64
	// TimedOut counts messages lost to latency above Profile.Timeout.
	TimedOut int64
	// Duplicated counts extra deliveries injected.
	Duplicated int64
	// DelayTotal is the summed virtual latency added to delivered messages.
	DelayTotal time.Duration
}

// Lost is every message that never (observably) arrived.
func (s Stats) Lost() int64 { return s.DroppedRequests + s.DroppedReplies + s.TimedOut }

// Injector implements p2p.FaultInjector: it draws each link's faults from
// that link's own seeded stream, so adding traffic on one link never
// perturbs the draws of another — the same variance-reduction discipline
// simclock.Stream gives the workload generators. Safe for concurrent use;
// within one single-goroutine simulation the draw order is fixed and the
// whole fault pattern replays from the seed.
type Injector struct {
	seed    int64
	profile Profile
	clock   *simclock.Virtual // optional; delivered-message latency advances it

	mu    sync.Mutex
	links map[string]*rand.Rand // guarded by mu
	stats Stats                 // guarded by mu
}

// NewInjector builds an injector for the profile. clock may be nil; when
// set, each delivered message's drawn latency advances it, so delay shows
// up in feedback timestamps and decay computations like real slowness
// would.
func NewInjector(seed int64, p Profile, clock *simclock.Virtual) *Injector {
	return &Injector{seed: seed, profile: p, clock: clock, links: map[string]*rand.Rand{}}
}

// Profile returns the profile the injector runs.
func (in *Injector) Profile() Profile { return in.profile }

// linkRNG returns the seeded stream for one directed link.
//
//lint:guarded linkRNG runs with in.mu held by Cut
func (in *Injector) linkRNG(from, to p2p.NodeID) *rand.Rand {
	key := string(from) + "→" + string(to)
	r, ok := in.links[key]
	if !ok {
		r = simclock.Stream(in.seed, "fault.link:"+key)
		in.links[key] = r
	}
	return r
}

// Cut implements p2p.FaultInjector. Draw order per attempt is fixed —
// request loss, latency, reply loss, duplication — so one seed yields one
// fault pattern.
func (in *Injector) Cut(from, to p2p.NodeID, kind string) p2p.LinkFault {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.linkRNG(from, to)
	in.stats.Requests++

	var cut p2p.LinkFault
	if in.profile.DropRate > 0 && r.Float64() < in.profile.DropRate {
		in.stats.DroppedRequests++
		cut.DropRequest = true
		return cut
	}
	if in.profile.MeanDelay > 0 {
		latency := time.Duration(r.ExpFloat64() * float64(in.profile.MeanDelay))
		if in.profile.Timeout > 0 && latency > in.profile.Timeout {
			in.stats.TimedOut++
			cut.DropRequest = true
			return cut
		}
		in.stats.DelayTotal += latency
		if in.clock != nil {
			in.clock.Advance(latency)
		}
	}
	if in.profile.DropRate > 0 && r.Float64() < in.profile.DropRate {
		in.stats.DroppedReplies++
		cut.DropReply = true
	}
	if in.profile.DuplicateRate > 0 && r.Float64() < in.profile.DuplicateRate {
		in.stats.Duplicated++
		cut.Duplicate = 1
	}
	return cut
}

// Stats returns a snapshot of the fault accounting.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Churner drives node churn on one network, round by round: each Step,
// every up peer goes down with probability ChurnRate and every down peer
// comes back with probability RejoinRate, both drawn from the churner's
// own seeded stream over the sorted membership. Suspended peers keep
// their state (P-Grid shards survive the round trip). After any toggle
// the registered repair hooks run — P-Grid route repair, overlay
// re-wiring — exactly once per Step.
type Churner struct {
	net *p2p.Network
	rng *rand.Rand
	p   Profile
	// MinAlive floors the up population so a market never churns itself
	// to death mid-experiment (default 1).
	MinAlive int

	mu      sync.Mutex
	down    map[p2p.NodeID]bool // guarded by mu
	repairs []func()            // guarded by mu
	downN   int64               // guarded by mu
	upN     int64               // guarded by mu
}

// NewChurner builds a churner over net.
func NewChurner(net *p2p.Network, seed int64, p Profile) *Churner {
	if net == nil {
		panic("fault: NewChurner requires a network")
	}
	return &Churner{
		net:      net,
		rng:      simclock.Stream(seed, "fault.churn"),
		p:        p,
		MinAlive: 1,
		down:     map[p2p.NodeID]bool{},
	}
}

// OnRepair registers a hook run after every Step that toggled any peer.
func (c *Churner) OnRepair(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.repairs = append(c.repairs, fn)
}

// Step runs one round of churn and reports how many peers toggled.
func (c *Churner) Step() int {
	if c.p.ChurnRate <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.net.Nodes()
	alive := 0
	for _, id := range ids {
		if !c.down[id] {
			alive++
		}
	}
	toggled := 0
	for _, id := range ids {
		if c.down[id] {
			if c.rng.Float64() < c.p.RejoinRate {
				c.net.Resume(id)
				delete(c.down, id)
				alive++
				c.upN++
				toggled++
			}
			continue
		}
		if alive > c.MinAlive && c.rng.Float64() < c.p.ChurnRate {
			c.net.Suspend(id)
			c.down[id] = true
			alive--
			c.downN++
			toggled++
		}
	}
	if toggled > 0 {
		for _, fn := range c.repairs {
			fn()
		}
	}
	return toggled
}

// Down returns the currently suspended peers, sorted.
func (c *Churner) Down() []p2p.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]p2p.NodeID, 0, len(c.down))
	for id := range c.down {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Churned reports cumulative down/up transitions.
func (c *Churner) Churned() (down, up int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downN, c.upN
}

// String aids debugging.
func (c *Churner) String() string {
	down, up := c.Churned()
	return fmt.Sprintf("churner(down=%d up=%d suspended=%d)", down, up, len(c.Down()))
}
