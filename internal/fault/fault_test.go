package fault

import (
	"reflect"
	"testing"
	"time"

	"wstrust/internal/p2p"
	"wstrust/internal/simclock"
)

func TestWindowContains(t *testing.T) {
	w := Window{From: 5, To: 9}
	for round, want := range map[int]bool{4: false, 5: true, 8: true, 9: false} {
		if got := w.Contains(round); got != want {
			t.Errorf("Contains(%d) = %v, want %v", round, got, want)
		}
	}
}

func TestProfileEnabled(t *testing.T) {
	if (Profile{}).Enabled() {
		t.Fatal("zero profile must be disabled")
	}
	cases := []Profile{
		{DropRate: 0.1},
		{DuplicateRate: 0.1},
		{MeanDelay: time.Millisecond},
		{ChurnRate: 0.1},
		{Outages: []Window{{From: 1, To: 2}}},
	}
	for i, p := range cases {
		if !p.Enabled() {
			t.Errorf("case %d: profile %v should be enabled", i, p)
		}
	}
}

func TestProfileString(t *testing.T) {
	if got := (Profile{}).String(); got != "none" {
		t.Fatalf("zero profile String() = %q, want none", got)
	}
	p := Profile{Name: "x", DropRate: 0.1, DuplicateRate: 0.05,
		MeanDelay: 20 * time.Millisecond, Timeout: 100 * time.Millisecond,
		ChurnRate: 0.1, RejoinRate: 0.5, Outages: []Window{{From: 3, To: 7}}}
	got := p.String()
	for _, want := range []string{"x", "drop=0.1", "dup=0.05", "delay=20ms",
		"timeout=100ms", "churn=0.1/rejoin=0.5", "outage=3-7"} {
		if !contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestParseProfilePresets(t *testing.T) {
	for _, preset := range Presets() {
		got, err := ParseProfile(preset.Name)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", preset.Name, err)
		}
		if !reflect.DeepEqual(got, preset) {
			t.Errorf("ParseProfile(%q) = %+v, want the preset %+v", preset.Name, got, preset)
		}
		if !got.Enabled() {
			t.Errorf("preset %q must be enabled", preset.Name)
		}
	}
	for _, s := range []string{"", "none", "  none  "} {
		got, err := ParseProfile(s)
		if err != nil || got.Enabled() {
			t.Errorf("ParseProfile(%q) = %+v, %v; want disabled zero profile", s, got, err)
		}
	}
}

func TestParseProfileKeyValue(t *testing.T) {
	p, err := ParseProfile("drop=0.1,dup=0.05,delay=20ms,timeout=100ms,churn=0.2,rejoin=0.6,outage=5-9,attempts=4")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropRate != 0.1 || p.DuplicateRate != 0.05 || p.MeanDelay != 20*time.Millisecond ||
		p.Timeout != 100*time.Millisecond || p.ChurnRate != 0.2 || p.RejoinRate != 0.6 {
		t.Errorf("rates wrong: %+v", p)
	}
	if len(p.Outages) != 1 || p.Outages[0] != (Window{From: 5, To: 9}) {
		t.Errorf("outages wrong: %+v", p.Outages)
	}
	if p.Retry.MaxAttempts != 4 {
		t.Errorf("attempts wrong: %+v", p.Retry)
	}

	// Churn without an explicit rejoin rate gets a default so the
	// population does not drain monotonically.
	p, err = ParseProfile("churn=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.RejoinRate <= 0 {
		t.Errorf("churn-only profile must default RejoinRate, got %+v", p)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, s := range []string{
		"bogus",         // not a preset, not key=value
		"drop=2",        // probability out of range
		"drop=x",        // not a float
		"delay=-5ms",    // negative duration
		"delay=nope",    // not a duration
		"attempts=0",    // below 1
		"attempts=x",    // not an int
		"outage=9-5",    // reversed window
		"outage=5",      // missing TO
		"volume=eleven", // unknown key
	} {
		if _, err := ParseProfile(s); err == nil {
			t.Errorf("ParseProfile(%q) should fail", s)
		}
	}
}

func TestInjectorDeterministicAndCounted(t *testing.T) {
	p := Profile{DropRate: 0.3, DuplicateRate: 0.2, MeanDelay: 10 * time.Millisecond,
		Timeout: 30 * time.Millisecond}
	run := func() ([]p2p.LinkFault, Stats) {
		in := NewInjector(42, p, nil)
		var faults []p2p.LinkFault
		for i := 0; i < 200; i++ {
			faults = append(faults, in.Cut("a", "b", "q"))
			faults = append(faults, in.Cut("b", "c", "q"))
		}
		return faults, in.Stats()
	}
	f1, s1 := run()
	f2, s2 := run()
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("same seed must replay the same fault pattern")
	}
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if s1.Requests != 400 {
		t.Errorf("Requests = %d, want 400", s1.Requests)
	}
	if s1.DroppedRequests == 0 || s1.DroppedReplies == 0 || s1.Duplicated == 0 {
		t.Errorf("at 30%% drop / 20%% dup over 400 attempts every class should fire: %+v", s1)
	}
	if s1.Lost() != s1.DroppedRequests+s1.DroppedReplies+s1.TimedOut {
		t.Errorf("Lost() inconsistent: %+v", s1)
	}
}

func TestInjectorPerLinkStreamsIndependent(t *testing.T) {
	p := Profile{DropRate: 0.3}
	// Pattern on link a→b must not depend on how much traffic b→c carries.
	seq := func(extra int) []p2p.LinkFault {
		in := NewInjector(7, p, nil)
		var out []p2p.LinkFault
		for i := 0; i < 50; i++ {
			for j := 0; j < extra; j++ {
				in.Cut("b", "c", "q")
			}
			out = append(out, in.Cut("a", "b", "q"))
		}
		return out
	}
	if !reflect.DeepEqual(seq(0), seq(5)) {
		t.Fatal("traffic on one link perturbed another link's fault stream")
	}
}

func TestInjectorZeroProfileIsTransparent(t *testing.T) {
	in := NewInjector(42, Profile{}, nil)
	for i := 0; i < 100; i++ {
		if cut := in.Cut("a", "b", "q"); cut != (p2p.LinkFault{}) {
			t.Fatalf("zero profile injected a fault: %+v", cut)
		}
	}
	s := in.Stats()
	if s.Lost() != 0 || s.Duplicated != 0 || s.DelayTotal != 0 {
		t.Fatalf("zero profile accounted faults: %+v", s)
	}
}

func TestInjectorDelayAdvancesClock(t *testing.T) {
	clock := simclock.NewVirtual()
	start := clock.Now()
	in := NewInjector(42, Profile{MeanDelay: 10 * time.Millisecond}, clock)
	for i := 0; i < 50; i++ {
		in.Cut("a", "b", "q")
	}
	elapsed := clock.Now().Sub(start)
	if elapsed <= 0 {
		t.Fatal("delivered latency must advance the virtual clock")
	}
	if elapsed != in.Stats().DelayTotal {
		t.Fatalf("clock advanced %v but DelayTotal = %v", elapsed, in.Stats().DelayTotal)
	}
}

func TestInjectorTimeoutLosesSlowMessages(t *testing.T) {
	// Mean delay far above the timeout: nearly everything should time out,
	// and timed-out messages count as losses, not delays.
	in := NewInjector(42, Profile{MeanDelay: time.Second, Timeout: time.Microsecond}, nil)
	for i := 0; i < 100; i++ {
		in.Cut("a", "b", "q")
	}
	s := in.Stats()
	if s.TimedOut < 90 {
		t.Fatalf("TimedOut = %d, want nearly all of 100", s.TimedOut)
	}
}

func TestPolicyScheduleInvariants(t *testing.T) {
	p := Policy{MaxAttempts: 6, Base: 50 * time.Millisecond, Cap: 300 * time.Millisecond, Multiplier: 2}
	for seed := int64(0); seed < 20; seed++ {
		sched := p.Schedule(seed)
		if len(sched) != p.MaxAttempts-1 {
			t.Fatalf("seed %d: len = %d, want %d", seed, len(sched), p.MaxAttempts-1)
		}
		if !reflect.DeepEqual(sched, p.Schedule(seed)) {
			t.Fatalf("seed %d: schedule not deterministic", seed)
		}
		prev := time.Duration(0)
		for i, d := range sched {
			if d < prev {
				t.Fatalf("seed %d: schedule not monotone at %d: %v", seed, i, sched)
			}
			if d > p.Cap {
				t.Fatalf("seed %d: delay %v exceeds cap %v", seed, d, p.Cap)
			}
			if d <= 0 {
				t.Fatalf("seed %d: non-positive delay at %d: %v", seed, i, sched)
			}
			prev = d
		}
	}
	if s := (Policy{MaxAttempts: 1}).Schedule(42); len(s) != 0 {
		t.Fatalf("single-attempt policy wants an empty schedule, got %v", s)
	}
	if s := (Policy{}).Schedule(42); len(s) != 0 {
		t.Fatalf("zero policy wants an empty schedule, got %v", s)
	}
}

func TestRetrierAdvancesVirtualClock(t *testing.T) {
	clock := simclock.NewVirtual()
	start := clock.Now()
	r := DefaultPolicy().Bind(42, clock)
	if r.Attempts() != 3 {
		t.Fatalf("Attempts = %d, want 3", r.Attempts())
	}
	r.Backoff(1)
	r.Backoff(2)
	if r.Retries() != 2 {
		t.Fatalf("Retries = %d, want 2", r.Retries())
	}
	if w := r.Waited(); w <= 0 || clock.Now().Sub(start) != w {
		t.Fatalf("Waited = %v, clock moved %v; they must match and be positive",
			w, clock.Now().Sub(start))
	}
	// Out-of-range attempts clamp instead of panicking.
	r.Backoff(0)
	r.Backoff(99)

	// A single-attempt policy backs off nowhere even when poked.
	one := Policy{MaxAttempts: 1}.Bind(42, clock)
	before := clock.Now()
	one.Backoff(1)
	if !clock.Now().Equal(before) {
		t.Fatal("single-attempt retrier must not advance the clock")
	}
}

func TestChurnerDeterministicSuspendResume(t *testing.T) {
	build := func() (*p2p.Network, *Churner) {
		net := p2p.NewNetwork()
		for _, id := range []p2p.NodeID{"a", "b", "c", "d", "e", "f"} {
			net.Join(id, func(from p2p.NodeID, kind string, payload any) any {
				return "ok"
			})
		}
		return net, NewChurner(net, 42, Profile{ChurnRate: 0.4, RejoinRate: 0.5})
	}
	run := func() [][]p2p.NodeID {
		_, c := build()
		var trace [][]p2p.NodeID
		for i := 0; i < 20; i++ {
			c.Step()
			trace = append(trace, c.Down())
		}
		return trace
	}
	t1, t2 := run(), run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same seed must replay the same churn trace")
	}

	net, c := build()
	sawDown := false
	for i := 0; i < 20; i++ {
		c.Step()
		down := c.Down()
		if len(down) > 0 {
			sawDown = true
		}
		alive := 0
		for _, id := range net.Nodes() {
			if net.Alive(id) {
				alive++
			}
		}
		if alive < c.MinAlive {
			t.Fatalf("step %d: alive = %d below MinAlive = %d", i, alive, c.MinAlive)
		}
		if alive+len(down) != 6 {
			t.Fatalf("step %d: alive %d + down %d != 6", i, alive, len(down))
		}
	}
	if !sawDown {
		t.Fatal("40% churn over 20 rounds never suspended anyone")
	}
	down, up := c.Churned()
	if down == 0 || up == 0 {
		t.Fatalf("Churned() = (%d, %d); both transitions should fire", down, up)
	}
	if c.String() == "" {
		t.Fatal("String() should describe the churner")
	}
}

func TestChurnerSuspendedStatePreserved(t *testing.T) {
	net := p2p.NewNetwork()
	calls := map[p2p.NodeID]int{}
	for _, id := range []p2p.NodeID{"a", "b"} {
		id := id
		net.Join(id, func(from p2p.NodeID, kind string, payload any) any {
			calls[id]++
			return calls[id]
		})
	}
	net.Suspend("b")
	if _, err := net.Send("a", "b", "q", nil); err == nil {
		t.Fatal("send to a suspended peer must fail")
	}
	net.Resume("b")
	reply, err := net.Send("a", "b", "q", nil)
	if err != nil {
		t.Fatal(err)
	}
	if reply.(int) != 1 {
		t.Fatalf("resumed handler lost its identity: reply %v", reply)
	}
}

func TestChurnerRepairHooksRunOncePerToggledStep(t *testing.T) {
	net := p2p.NewNetwork()
	for _, id := range []p2p.NodeID{"a", "b", "c", "d"} {
		net.Join(id, func(from p2p.NodeID, kind string, payload any) any {
			return nil
		})
	}
	c := NewChurner(net, 42, Profile{ChurnRate: 1, RejoinRate: 0})
	repairs := 0
	c.OnRepair(func() { repairs++ })
	toggled := c.Step()
	if toggled == 0 || repairs != 1 {
		t.Fatalf("toggled=%d repairs=%d; a toggling step runs hooks exactly once", toggled, repairs)
	}
	// ChurnRate 1 with MinAlive 1 leaves exactly one peer up; with
	// RejoinRate 0 nothing can toggle any more, so hooks stay quiet.
	c.Step()
	if repairs != 1 {
		t.Fatalf("quiet step ran repair hooks (repairs=%d)", repairs)
	}
	if got := len(c.Down()); got != 3 {
		t.Fatalf("MinAlive floor: %d down, want 3 of 4", got)
	}
}

func TestChurnerZeroRateIsInert(t *testing.T) {
	net := p2p.NewNetwork()
	net.Join("a", func(from p2p.NodeID, kind string, payload any) any { return nil })
	c := NewChurner(net, 42, Profile{})
	if c.Step() != 0 || len(c.Down()) != 0 {
		t.Fatal("zero churn rate must be inert")
	}
}
