package fault

import (
	"testing"
	"time"
)

// FuzzFaultPolicy hammers the three Schedule invariants across arbitrary
// policies and seeds: the schedule is seed-deterministic, monotone
// non-decreasing, and every delay is positive and bounded by the
// normalized cap.
func FuzzFaultPolicy(f *testing.F) {
	f.Add(int64(42), 3, int64(50), int64(2000), 2.0)
	f.Add(int64(7), 1, int64(0), int64(0), 0.0)
	f.Add(int64(-1), 9, int64(1), int64(1), 1.5)
	f.Fuzz(func(t *testing.T, seed int64, attempts int, baseMs, capMs int64, mult float64) {
		if attempts < 0 {
			attempts = -attempts
		}
		p := Policy{
			MaxAttempts: attempts % 16,
			Base:        time.Duration(baseMs%10_000) * time.Millisecond,
			Cap:         time.Duration(capMs%60_000) * time.Millisecond,
			Multiplier:  mult,
		}
		n := p.normalized()
		sched := p.Schedule(seed)
		again := p.Schedule(seed)
		if len(sched) != len(again) {
			t.Fatalf("schedule length changed between calls: %d vs %d", len(sched), len(again))
		}
		if want := n.MaxAttempts - 1; len(sched) != want {
			t.Fatalf("schedule has %d entries, want %d for %d attempts", len(sched), want, n.MaxAttempts)
		}
		prev := time.Duration(0)
		for i, d := range sched {
			if d != again[i] {
				t.Fatalf("entry %d differs between same-seed calls: %v vs %v", i, d, again[i])
			}
			if d <= 0 {
				t.Fatalf("entry %d is %v, want positive", i, d)
			}
			if d < prev {
				t.Fatalf("entry %d (%v) below predecessor (%v): schedule not monotone", i, d, prev)
			}
			if d > n.Cap {
				t.Fatalf("entry %d (%v) above cap %v", i, d, n.Cap)
			}
			prev = d
		}
	})
}
