// Package fault is the deterministic fault-injection layer for the
// decentralized substrate: seeded per-link message drop, delay and
// duplication on p2p.Network, node churn (suspend + resume with P-Grid
// route repair and overlay re-wiring), and registry outage windows on the
// SOA side. The survey's Section 5 names decentralized reputation as the
// open problem and prices it in "a lot of communication and calculation";
// this package supplies the half of that price the perfect in-memory
// substrate hides — what happens when the communication fails.
//
// Everything here is driven by simclock: randomness comes from seeded
// streams (one per link, one for churn, one per backoff schedule) and
// backoff advances a simclock.Virtual rather than sleeping, so a faulted
// run replays byte-for-byte from its seed and stays wsxlint
// determinism-clean. With the zero Profile nothing is installed and every
// message count, report byte and RNG draw is identical to a fault-free
// run.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Window is a half-open interval of simulation rounds [From, To) during
// which the service registry is unreachable.
type Window struct {
	From, To int
}

// Contains reports whether round falls inside the window.
func (w Window) Contains(round int) bool { return round >= w.From && round < w.To }

// Profile describes one fault regime. The zero value is the perfect
// substrate: nothing is dropped, nobody churns, the registry stays up.
type Profile struct {
	// Name labels the profile in reports and flags.
	Name string
	// DropRate is the per-message probability that a request is lost
	// before its handler, and independently that a reply is lost on the
	// way back (the handler then ran — the at-least-once hazard).
	DropRate float64
	// DuplicateRate is the probability a delivered request is re-delivered
	// one extra time (duplicate suppression is the mechanism's problem).
	DuplicateRate float64
	// MeanDelay is the mean of the exponentially distributed virtual
	// latency added to each delivered message. Zero adds none.
	MeanDelay time.Duration
	// Timeout, when positive, loses any message whose drawn latency
	// exceeds it — a slow link is indistinguishable from a dead one.
	Timeout time.Duration
	// ChurnRate is the per-round probability that each up peer goes down.
	ChurnRate float64
	// RejoinRate is the per-round probability that each down peer comes
	// back (with its state intact).
	RejoinRate float64
	// Outages are the registry outage windows, in simulation rounds.
	Outages []Window
	// Retry is the transport retry policy decentralized lookups run
	// under. The zero Policy means a single attempt and no backoff.
	Retry Policy
}

// Enabled reports whether the profile injects any fault at all.
func (p Profile) Enabled() bool {
	return p.DropRate > 0 || p.DuplicateRate > 0 || p.MeanDelay > 0 ||
		p.ChurnRate > 0 || len(p.Outages) > 0
}

// String renders the profile compactly for report headers.
func (p Profile) String() string {
	if !p.Enabled() {
		return "none"
	}
	parts := []string{}
	if p.Name != "" {
		parts = append(parts, p.Name)
	}
	if p.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.DropRate))
	}
	if p.DuplicateRate > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", p.DuplicateRate))
	}
	if p.MeanDelay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s", p.MeanDelay))
	}
	if p.Timeout > 0 {
		parts = append(parts, fmt.Sprintf("timeout=%s", p.Timeout))
	}
	if p.ChurnRate > 0 {
		parts = append(parts, fmt.Sprintf("churn=%g/rejoin=%g", p.ChurnRate, p.RejoinRate))
	}
	for _, w := range p.Outages {
		parts = append(parts, fmt.Sprintf("outage=%d-%d", w.From, w.To))
	}
	return strings.Join(parts, ",")
}

// Presets returns the named fault profiles `wsxsim -faults` accepts
// alongside the key=value syntax, in display order.
func Presets() []Profile {
	retry := DefaultPolicy()
	return []Profile{
		{Name: "lossy", DropRate: 0.10, Retry: retry},
		{Name: "lossy30", DropRate: 0.30, Retry: retry},
		{Name: "churny", ChurnRate: 0.10, RejoinRate: 0.5, Retry: retry},
		{Name: "outage", Outages: []Window{{From: 6, To: 12}}, Retry: retry},
		{Name: "chaos", DropRate: 0.15, DuplicateRate: 0.05, ChurnRate: 0.10,
			RejoinRate: 0.5, Outages: []Window{{From: 6, To: 10}}, Retry: retry},
	}
}

// ParseProfile turns a -faults argument into a Profile: "none"/"" for the
// perfect substrate, a preset name from Presets, or a comma-separated
// key=value list — drop=0.1,dup=0.05,delay=20ms,timeout=100ms,churn=0.1,
// rejoin=0.5,outage=5-9,attempts=4. Unknown keys are errors.
func ParseProfile(s string) (Profile, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return Profile{}, nil
	}
	for _, p := range Presets() {
		if p.Name == s {
			return p, nil
		}
	}
	p := Profile{Name: "custom", Retry: DefaultPolicy()}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Profile{}, fmt.Errorf("fault: %q is not key=value (and not a preset; see -faults help)", part)
		}
		switch key {
		case "drop", "dup", "churn", "rejoin":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return Profile{}, fmt.Errorf("fault: %s=%q wants a probability in [0,1]", key, val)
			}
			switch key {
			case "drop":
				p.DropRate = f
			case "dup":
				p.DuplicateRate = f
			case "churn":
				p.ChurnRate = f
			case "rejoin":
				p.RejoinRate = f
			}
		case "delay", "timeout":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Profile{}, fmt.Errorf("fault: %s=%q wants a non-negative duration", key, val)
			}
			if key == "delay" {
				p.MeanDelay = d
			} else {
				p.Timeout = d
			}
		case "attempts":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Profile{}, fmt.Errorf("fault: attempts=%q wants an integer ≥ 1", val)
			}
			p.Retry.MaxAttempts = n
		case "outage":
			lo, hi, ok := strings.Cut(val, "-")
			from, err1 := strconv.Atoi(lo)
			to, err2 := strconv.Atoi(hi)
			if !ok || err1 != nil || err2 != nil || from < 0 || to < from {
				return Profile{}, fmt.Errorf("fault: outage=%q wants FROM-TO rounds with TO ≥ FROM", val)
			}
			p.Outages = append(p.Outages, Window{From: from, To: to})
		default:
			return Profile{}, fmt.Errorf("fault: unknown profile key %q", key)
		}
	}
	if p.ChurnRate > 0 && p.RejoinRate == 0 {
		p.RejoinRate = 0.5 // churn without rejoin empties the network
	}
	return p, nil
}
