package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if got := v.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want Epoch %v", got, Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(90 * time.Second)
	if got, want := v.Now(), Epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	v.Advance(0) // zero advance is legal
	if got, want := v.Now(), Epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("after zero advance Now() = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewVirtual().Advance(-time.Second)
}

func TestVirtualSetBackwardsPanics(t *testing.T) {
	v := NewVirtual()
	v.Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("Set to the past did not panic")
		}
	}()
	v.Set(Epoch)
}

func TestFixed(t *testing.T) {
	at := Epoch.Add(42 * time.Minute)
	c := Fixed(at)
	if !c.Now().Equal(at) {
		t.Fatalf("Fixed clock Now() = %v, want %v", c.Now(), at)
	}
}

func TestEventQueueFiresInTimestampOrder(t *testing.T) {
	v := NewVirtual()
	q := NewEventQueue(v)
	var got []int
	q.Schedule(Epoch.Add(3*time.Second), func() { got = append(got, 3) })
	q.Schedule(Epoch.Add(1*time.Second), func() { got = append(got, 1) })
	q.Schedule(Epoch.Add(2*time.Second), func() { got = append(got, 2) })
	if n := q.Drain(10); n != 3 {
		t.Fatalf("Drain fired %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if !v.Now().Equal(Epoch.Add(3 * time.Second)) {
		t.Fatalf("clock ended at %v, want %v", v.Now(), Epoch.Add(3*time.Second))
	}
}

func TestEventQueueTiesFireInScheduleOrder(t *testing.T) {
	v := NewVirtual()
	q := NewEventQueue(v)
	at := Epoch.Add(time.Second)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		q.Schedule(at, func() { got = append(got, i) })
	}
	q.Drain(10)
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("tie order %v, want ascending schedule order", got)
		}
	}
}

func TestEventQueueSelfScheduling(t *testing.T) {
	v := NewVirtual()
	q := NewEventQueue(v)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 4 {
			q.ScheduleAfter(time.Second, tick)
		}
	}
	q.ScheduleAfter(time.Second, tick)
	q.Drain(100)
	if count != 4 {
		t.Fatalf("self-scheduling event fired %d times, want 4", count)
	}
}

func TestEventQueueRunUntil(t *testing.T) {
	v := NewVirtual()
	q := NewEventQueue(v)
	fired := 0
	for i := 1; i <= 5; i++ {
		q.Schedule(Epoch.Add(time.Duration(i)*time.Minute), func() { fired++ })
	}
	if n := q.RunUntil(Epoch.Add(3 * time.Minute)); n != 3 {
		t.Fatalf("RunUntil fired %d, want 3", n)
	}
	if q.Len() != 2 {
		t.Fatalf("pending = %d, want 2", q.Len())
	}
}

func TestEventQueueSchedulePastPanics(t *testing.T) {
	v := NewVirtual()
	v.Advance(time.Hour)
	q := NewEventQueue(v)
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule in the past did not panic")
		}
	}()
	q.Schedule(Epoch, func() {})
}

func TestEventQueueDrainLimitPanics(t *testing.T) {
	v := NewVirtual()
	q := NewEventQueue(v)
	var loop func()
	loop = func() { q.ScheduleAfter(time.Second, loop) }
	q.ScheduleAfter(time.Second, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain of an infinite chain did not panic")
		}
	}()
	q.Drain(10)
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced diverging sequences")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	// Same root seed, same name: identical streams.
	a, b := Stream(1, "providers"), Stream(1, "providers")
	if a.Int63() != b.Int63() {
		t.Fatal("identical stream names diverged")
	}
	// Different names: streams differ (overwhelmingly likely in 10 draws).
	c, d := Stream(1, "providers"), Stream(1, "consumers")
	same := true
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("differently named streams produced identical draws")
	}
}

func TestStreamNameSensitivityProperty(t *testing.T) {
	// Property: for any seed and any pair of distinct names, the first draws
	// almost surely differ. testing/quick feeds arbitrary seeds/names.
	f := func(seed int64, name1, name2 string) bool {
		if name1 == name2 {
			return true
		}
		// A single equal first-draw is possible but astronomically unlikely;
		// compare three draws to make the property robust.
		a, b := Stream(seed, name1), Stream(seed, name2)
		for i := 0; i < 3; i++ {
			if a.Int63() != b.Int63() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
