package simclock

import (
	"hash/fnv"
	"math/rand"
)

// NewRand returns a rand.Rand seeded with seed. Every stochastic component
// in wstrust receives its randomness through this constructor (directly or
// via Stream) so whole experiments replay exactly from one seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Stream derives an independent, named random stream from a root seed.
// Components that run "in parallel" conceptually (e.g. each provider's
// behaviour model, each attacker clique) take distinct streams so that
// adding a component does not perturb the random draws of the others —
// a standard variance-reduction discipline in discrete-event simulation.
func Stream(rootSeed int64, name string) *rand.Rand {
	h := fnv.New64a()
	// hash.Hash.Write never returns an error.
	_, _ = h.Write([]byte(name))
	return NewRand(rootSeed ^ int64(h.Sum64()))
}
