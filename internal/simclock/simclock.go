// Package simclock provides the deterministic time substrate used by every
// simulated component in wstrust: a virtual clock, a discrete-event queue,
// and seeded random-number streams.
//
// All of the trust and reputation experiments in this repository must be
// reproducible from a single seed. To make that possible no component reads
// wall-clock time or the global math/rand source; instead they receive a
// Clock and a *rand.Rand derived from this package.
package simclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Epoch is the instant at which every simulation starts. The concrete value
// is arbitrary; it only matters that it is fixed so runs are reproducible.
var Epoch = time.Date(2007, time.June, 25, 0, 0, 0, 0, time.UTC)

// Clock supplies the current simulated instant. Components that need time
// (rating timestamps, decay computations, SLA deadlines) accept a Clock so
// they can run against either a virtual clock in tests and experiments or,
// in principle, real time.
type Clock interface {
	// Now reports the current simulated instant.
	Now() time.Time
}

// Virtual is a manually advanced Clock. The zero value is not usable; use
// NewVirtual. Virtual is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Time // guarded by mu
}

// NewVirtual returns a Virtual clock positioned at Epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: Epoch}
}

// Now reports the current simulated instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d. Advancing by a negative duration is
// a programming error and panics: simulated time never runs backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: Advance by negative duration %v", d))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

// Set jumps the clock to t. Set panics if t precedes the current instant.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		panic(fmt.Sprintf("simclock: Set to %v before current %v", t, v.now))
	}
	v.now = t
}

// Fixed returns a Clock frozen at t, convenient in unit tests.
func Fixed(t time.Time) Clock { return fixedClock(t) }

type fixedClock time.Time

// Now implements Clock.
func (f fixedClock) Now() time.Time { return time.Time(f) }

// Event is a unit of work scheduled on an EventQueue.
type Event struct {
	// At is the simulated instant the event fires.
	At time.Time
	// Run is invoked when the event fires.
	Run func()

	seq int // tie-break so equal-time events fire in scheduling order
	idx int // heap index
}

// EventQueue is a discrete-event scheduler driving a Virtual clock. Events
// fire in timestamp order; ties fire in the order they were scheduled, which
// keeps runs deterministic. EventQueue is not safe for concurrent use: the
// simulations in this repository are single-threaded by design (see
// DESIGN.md §5 — determinism outranks parallelism here).
type EventQueue struct {
	clock *Virtual
	heap  eventHeap
	seq   int
}

// NewEventQueue returns an empty queue driving clock.
func NewEventQueue(clock *Virtual) *EventQueue {
	return &EventQueue{clock: clock}
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

// Schedule enqueues run to fire at absolute instant at. Scheduling in the
// past panics, as it would make the event order ambiguous.
func (q *EventQueue) Schedule(at time.Time, run func()) {
	if at.Before(q.clock.Now()) {
		panic(fmt.Sprintf("simclock: Schedule at %v before now %v", at, q.clock.Now()))
	}
	q.seq++
	heap.Push(&q.heap, &Event{At: at, Run: run, seq: q.seq})
}

// ScheduleAfter enqueues run to fire d after the current instant.
func (q *EventQueue) ScheduleAfter(d time.Duration, run func()) {
	q.Schedule(q.clock.Now().Add(d), run)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (q *EventQueue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	ev := heap.Pop(&q.heap).(*Event)
	q.clock.Set(ev.At)
	ev.Run()
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after deadline. It returns the number of events fired.
func (q *EventQueue) RunUntil(deadline time.Time) int {
	n := 0
	for len(q.heap) > 0 && !q.heap[0].At.After(deadline) {
		q.Step()
		n++
	}
	return n
}

// Drain fires all pending events, including ones scheduled by other events,
// and returns the number fired. limit bounds the total so a self-scheduling
// event cannot loop forever; Drain panics if the limit is exceeded.
func (q *EventQueue) Drain(limit int) int {
	n := 0
	for q.Step() {
		n++
		if n > limit {
			panic(fmt.Sprintf("simclock: Drain exceeded %d events", limit))
		}
	}
	return n
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].At.Equal(h[j].At) {
		return h[i].At.Before(h[j].At)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
