package simclock

import "time"

// Wall returns the Clock that reads the operating-system clock. It exists
// for serving processes (cmd/wsxd): components stay clock-abstracted —
// simulations and tests hand them a Virtual, the daemon hands them this —
// and the repo's determinism lint keeps wall-clock reads confined to this
// package.
func Wall() Clock { return wallClock{} }

type wallClock struct{}

// Now implements Clock on the real clock.
func (wallClock) Now() time.Time { return time.Now() }

// SleepWall blocks the calling goroutine on the operating-system clock.
// Like Wall, it exists for serving and load-driving processes
// (cmd/wsxload's open-loop pacer): simulation code never sleeps, and the
// determinism lint confines real sleeping to this seam.
func SleepWall(d time.Duration) { time.Sleep(d) }
