package resilience

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Profile describes one discovery-resilience regime for the simulator:
// how the mediated-selection path treats a registry that stops answering.
// The zero value is the PR-4 behaviour — one availability probe, no
// breaker — and leaves every report byte-identical to builds without this
// layer.
type Profile struct {
	// Name labels the profile in reports and flags.
	Name string
	// Breaker, when non-nil, guards registry discovery with a circuit
	// breaker: failed probes trip it, and while it is open consumers go
	// straight to their stale catalog without spending a message.
	Breaker *BreakerConfig
	// Attempts is how many availability probes a discovery call pays
	// while the registry is down before falling back to the stale
	// catalog (naive retry; min 1). With a breaker installed the breaker
	// decides instead and Attempts is ignored.
	Attempts int
}

// Enabled reports whether the profile changes discovery behaviour at all.
func (p Profile) Enabled() bool { return p.Breaker != nil || p.Attempts > 1 }

// String renders the profile compactly for report headers.
func (p Profile) String() string {
	if !p.Enabled() {
		return "none"
	}
	parts := []string{}
	if p.Name != "" {
		parts = append(parts, p.Name)
	}
	if p.Breaker != nil {
		b := p.Breaker.normalized()
		parts = append(parts, fmt.Sprintf("breaker(threshold=%d,cooldown=%s,probes=%d)",
			b.FailureThreshold, b.Cooldown, b.HalfOpenProbes))
	} else if p.Attempts > 1 {
		parts = append(parts, fmt.Sprintf("attempts=%d", p.Attempts))
	}
	return strings.Join(parts, ",")
}

// Presets returns the named profiles `wsxsim -resilience` accepts
// alongside the key=value syntax, in display order. Cooldowns are sized
// against the simulator's one-hour rounds.
func Presets() []Profile {
	return []Profile{
		{Name: "breaker", Breaker: &BreakerConfig{FailureThreshold: 3, Cooldown: 90 * time.Minute}},
		{Name: "naive", Attempts: 3},
	}
}

// ParseProfile turns a -resilience argument into a Profile: "none"/"" for
// the plain substrate, a preset name from Presets, or a comma-separated
// key=value list — breaker=on,threshold=3,cooldown=90m,jitter=0.1,
// probes=1,attempts=3. Unknown keys are errors.
func ParseProfile(s string) (Profile, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return Profile{}, nil
	}
	for _, p := range Presets() {
		if p.Name == s {
			return p, nil
		}
	}
	p := Profile{Name: "custom"}
	var bc BreakerConfig
	useBreaker := false
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Profile{}, fmt.Errorf("resilience: %q is not key=value (and not a preset; see -resilience help)", part)
		}
		switch key {
		case "breaker":
			switch val {
			case "on", "true", "1":
				useBreaker = true
			case "off", "false", "0":
				useBreaker = false
			default:
				return Profile{}, fmt.Errorf("resilience: breaker=%q wants on or off", val)
			}
		case "threshold", "probes":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Profile{}, fmt.Errorf("resilience: %s=%q wants an integer ≥ 1", key, val)
			}
			useBreaker = true
			if key == "threshold" {
				bc.FailureThreshold = n
			} else {
				bc.HalfOpenProbes = n
			}
		case "cooldown":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Profile{}, fmt.Errorf("resilience: cooldown=%q wants a positive duration", val)
			}
			useBreaker = true
			bc.Cooldown = d
		case "jitter":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f >= 1 {
				return Profile{}, fmt.Errorf("resilience: jitter=%q wants a fraction in [0,1)", val)
			}
			useBreaker = true
			bc.Jitter = f
		case "attempts":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Profile{}, fmt.Errorf("resilience: attempts=%q wants an integer ≥ 1", val)
			}
			p.Attempts = n
		default:
			return Profile{}, fmt.Errorf("resilience: unknown profile key %q", key)
		}
	}
	if useBreaker {
		p.Breaker = &bc
	}
	return p, nil
}
