package resilience

import (
	"context"
	"testing"
)

func TestBulkheadCapacity(t *testing.T) {
	b := NewBulkhead(2)
	if b.Capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", b.Capacity())
	}
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("could not fill an empty 2-slot bulkhead")
	}
	if b.TryAcquire() {
		t.Fatal("acquired a third slot from a 2-slot bulkhead")
	}
	if b.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", b.InUse())
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("slot not reusable after Release")
	}
	if b.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", b.Rejected())
	}
}

func TestBulkheadAcquireContext(t *testing.T) {
	b := NewBulkhead(1)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire on empty bulkhead = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Acquire(ctx); err != context.Canceled {
		t.Fatalf("acquire on full bulkhead with cancelled ctx = %v, want context.Canceled", err)
	}
	if b.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", b.Rejected())
	}

	// A waiter gets the slot when the holder releases.
	done := make(chan error, 1)
	go func() { done <- b.Acquire(context.Background()) }()
	b.Release()
	if err := <-done; err != nil {
		t.Fatalf("blocked acquire after release = %v", err)
	}
}

func TestBulkheadOverReleasePanics(t *testing.T) {
	b := NewBulkhead(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	b.Release()
}

func TestBulkheadMinimumCapacity(t *testing.T) {
	b := NewBulkhead(0)
	if b.Capacity() != 1 {
		t.Fatalf("capacity = %d, want floor of 1", b.Capacity())
	}
}
