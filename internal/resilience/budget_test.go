package resilience

import (
	"testing"
	"time"

	"wstrust/internal/fault"
	"wstrust/internal/simclock"
)

func TestBudgetAccounting(t *testing.T) {
	clock := simclock.NewVirtual()
	b := NewBudget(clock, time.Minute)

	if b.Exceeded() {
		t.Fatal("fresh budget already exceeded")
	}
	if !b.Fits(time.Minute) || b.Fits(time.Minute+time.Nanosecond) {
		t.Fatalf("Fits boundary wrong: remaining=%s", b.Remaining())
	}
	clock.Advance(40 * time.Second)
	if got := b.Remaining(); got != 20*time.Second {
		t.Fatalf("remaining after 40s = %s, want 20s", got)
	}
	clock.Advance(time.Hour)
	if got := b.Remaining(); got != 0 {
		t.Fatalf("remaining past deadline = %s, want 0", got)
	}
	if !b.Exceeded() {
		t.Fatal("budget not exceeded past its deadline")
	}
}

func TestUnderBudgetTrimsSchedule(t *testing.T) {
	pol := fault.Policy{MaxAttempts: 6, Base: 10 * time.Second, Cap: 10 * time.Second, Multiplier: 1}
	clock := simclock.NewVirtual()
	full := pol.Schedule(42)
	if len(full) != 5 {
		t.Fatalf("policy schedule length = %d, want 5 backoffs for 6 attempts", len(full))
	}
	var total time.Duration
	for _, d := range full {
		total += d
	}

	// A budget covering the whole schedule keeps every attempt.
	r := UnderBudget(pol, 42, NewBudget(clock, total+time.Second), clock)
	if r.Attempts() != 6 {
		t.Fatalf("uncut retrier attempts = %d, want 6", r.Attempts())
	}

	// A budget covering only the first two backoffs keeps three attempts.
	r = UnderBudget(pol, 42, NewBudget(clock, full[0]+full[1]), clock)
	if r.Attempts() != 3 {
		t.Fatalf("trimmed retrier attempts = %d, want 3 (schedule %v, budget %s)",
			r.Attempts(), full, full[0]+full[1])
	}
	if got := r.Schedule(); len(got) != 2 || got[0] != full[0] || got[1] != full[1] {
		t.Fatalf("trimmed schedule = %v, want prefix %v", got, full[:2])
	}

	// An exhausted budget still allows exactly one attempt, zero retries.
	spent := NewBudget(clock, 0)
	r = UnderBudget(pol, 42, spent, clock)
	if r.Attempts() != 1 || len(r.Schedule()) != 0 {
		t.Fatalf("zero-budget retrier = %d attempts, schedule %v; want 1 attempt, empty", r.Attempts(), r.Schedule())
	}
}

func TestBudgetedRetrierBackoffAdvancesVirtualTime(t *testing.T) {
	pol := fault.Policy{MaxAttempts: 4, Base: time.Second, Cap: time.Second, Multiplier: 1}
	clock := simclock.NewVirtual()
	r := UnderBudget(pol, 7, NewBudget(clock, time.Hour), clock)

	start := clock.Now()
	sched := r.Schedule()
	for i := 1; i < r.Attempts(); i++ {
		r.Backoff(i)
	}
	var want time.Duration
	for _, d := range sched {
		want += d
	}
	if got := clock.Now().Sub(start); got != want {
		t.Fatalf("backoffs advanced clock by %s, want %s", got, want)
	}
	r.Backoff(0)   // out of range: no-op
	r.Backoff(100) // out of range: no-op
	if got := clock.Now().Sub(start); got != want {
		t.Fatal("out-of-range Backoff moved the clock")
	}
}

func TestBudgetedRetrierRetriesCannotOverrunDeadline(t *testing.T) {
	// Whatever the policy asks for, the cumulative backoff a budgeted
	// retrier performs fits inside the budget it was built from.
	pol := fault.Policy{MaxAttempts: 10, Base: 500 * time.Millisecond, Cap: 30 * time.Second, Multiplier: 2}
	for _, allowance := range []time.Duration{0, time.Second, 5 * time.Second, time.Minute} {
		clock := simclock.NewVirtual()
		budget := NewBudget(clock, allowance)
		r := UnderBudget(pol, 42, budget, clock)
		for i := 1; i < r.Attempts(); i++ {
			r.Backoff(i)
		}
		if budget.Exceeded() && allowance > 0 {
			t.Fatalf("allowance %s: retries overran the deadline (remaining %s)", allowance, budget.Remaining())
		}
	}
}
