package resilience

import (
	"fmt"
	"sync"
	"time"

	"wstrust/internal/simclock"
)

// Priority classes requests for admission control. Lower values are more
// important: when the token bucket runs down, Low work is shed first,
// then Normal, then High; Critical work (health checks, drains) is
// admitted while any token remains.
type Priority int

const (
	Critical Priority = iota
	High
	Normal
	Low
	numPriorities
)

// String renders the priority for stats tables.
func (p Priority) String() string {
	switch p {
	case Critical:
		return "critical"
	case High:
		return "high"
	case Normal:
		return "normal"
	case Low:
		return "low"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// ShedderConfig tunes a token-bucket load shedder.
type ShedderConfig struct {
	// Rate is the sustained admission rate, in requests per second of
	// clock time (required, > 0).
	Rate float64
	// Burst is the bucket capacity (default: one second of Rate).
	Burst float64
	// Reserve maps each priority to the fraction of Burst fenced off
	// from it: the class is admitted only while the bucket holds more
	// than Reserve×Burst tokens. Critical defaults to 0 (admitted to the
	// last token); unset classes inherit defaultReserves.
	Reserve map[Priority]float64
}

// defaultReserves shed roughly the bottom 60% of the bucket from Low
// traffic and the bottom 25% from Normal, keeping headroom for the
// classes above them.
var defaultReserves = map[Priority]float64{
	Critical: 0,
	High:     0.10,
	Normal:   0.25,
	Low:      0.60,
}

func (c ShedderConfig) normalized() ShedderConfig {
	if c.Rate <= 0 {
		c.Rate = 1
	}
	if c.Burst <= 0 {
		c.Burst = c.Rate
	}
	reserve := make(map[Priority]float64, int(numPriorities))
	for p := Critical; p < numPriorities; p++ {
		r, ok := c.Reserve[p]
		if !ok {
			r = defaultReserves[p]
		}
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		reserve[p] = r
	}
	c.Reserve = reserve
	return c
}

// ShedStats is a per-class admission snapshot.
type ShedStats struct {
	Admitted [numPriorities]int64
	Shed     [numPriorities]int64
}

// TotalShed sums sheds across classes.
func (s ShedStats) TotalShed() int64 {
	var n int64
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// TotalAdmitted sums admissions across classes.
func (s ShedStats) TotalAdmitted() int64 {
	var n int64
	for _, v := range s.Admitted {
		n += v
	}
	return n
}

// Shedder is a token-bucket load shedder with priority classes. Tokens
// refill continuously at Rate per second of clock time up to Burst; each
// admitted request spends one. A request is admitted only if, after
// spending its token, the bucket stays above the reserve fenced off from
// its priority class — so overload starves Low traffic first and Critical
// traffic last. Deterministic under a virtual clock; safe for concurrent
// use.
type Shedder struct {
	cfg   ShedderConfig
	clock simclock.Clock

	mu     sync.Mutex
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu; last refill instant
	stats  ShedStats // guarded by mu
}

// NewShedder builds a shedder over the given clock, starting with a full
// bucket.
func NewShedder(cfg ShedderConfig, clock simclock.Clock) *Shedder {
	if clock == nil {
		panic("resilience: NewShedder requires a clock")
	}
	n := cfg.normalized()
	return &Shedder{cfg: n, clock: clock, tokens: n.Burst, last: clock.Now()}
}

// Admit decides one request: true spends a token, false sheds the
// request (and is the caller's cue to answer 429/503 immediately rather
// than queue).
//
//lint:hotpath first gate on every wsxd request; token math only, no allocation
func (s *Shedder) Admit(p Priority) bool {
	if p < Critical || p >= numPriorities {
		p = Low
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	if dt := now.Sub(s.last).Seconds(); dt > 0 {
		s.tokens += dt * s.cfg.Rate
		if s.tokens > s.cfg.Burst {
			s.tokens = s.cfg.Burst
		}
	}
	s.last = now
	floor := s.cfg.Reserve[p] * s.cfg.Burst
	if s.tokens-1 < floor {
		s.stats.Shed[p]++
		return false
	}
	s.tokens--
	s.stats.Admitted[p]++
	return true
}

// Tokens reports the current bucket level (after refilling to now).
func (s *Shedder) Tokens() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	if dt := now.Sub(s.last).Seconds(); dt > 0 {
		s.tokens += dt * s.cfg.Rate
		if s.tokens > s.cfg.Burst {
			s.tokens = s.cfg.Burst
		}
		s.last = now
	}
	return s.tokens
}

// Stats snapshots the per-class accounting.
func (s *Shedder) Stats() ShedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
