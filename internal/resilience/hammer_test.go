package resilience

import (
	"context"
	"sync"
	"testing"
	"time"

	"wstrust/internal/simclock"
)

// The hammer tests mirror trusttest.Hammer's shape — 8 goroutines × 250
// ops against one shared primitive — so `make race` exercises every lock
// around the breaker's state machine, the shedder's bucket, and the
// bulkhead's slots. Assertions stay structural (counters balance, no
// panic, no deadlock); exact values are unpredictable under races.

func TestBreakerHammer(t *testing.T) {
	clock := simclock.NewVirtual()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Millisecond, Jitter: 0.2},
		clock, simclock.Stream(42, "hammer"))

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if b.Allow() {
					if (w+i)%10 < 4 { // runs of failures long enough to trip
						b.Failure()
					} else {
						b.Success()
					}
				}
				if w == 0 && i%10 == 9 {
					clock.Advance(time.Millisecond)
				}
				_ = b.State()
			}
		}()
	}
	wg.Wait()

	st := b.Stats()
	if st.State != Closed && st.State != Open && st.State != HalfOpen {
		t.Fatalf("hammered breaker in impossible state %d", st.State)
	}
	if st.Trips < 1 {
		t.Fatalf("hammer with 1/3 failure rate never tripped the breaker: %+v", st)
	}
}

func TestShedderHammer(t *testing.T) {
	clock := simclock.NewVirtual()
	s := NewShedder(ShedderConfig{Rate: 100, Burst: 50}, clock)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				s.Admit(Priority(i % int(numPriorities)))
				if w == 0 && i%20 == 19 {
					clock.Advance(100 * time.Millisecond)
				}
				_ = s.Tokens()
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	if got := st.TotalAdmitted() + st.TotalShed(); got != 8*250 {
		t.Fatalf("admitted %d + shed %d = %d, want every one of %d requests accounted",
			st.TotalAdmitted(), st.TotalShed(), got, 8*250)
	}
	if tokens := s.Tokens(); tokens < 0 || tokens > 50 {
		t.Fatalf("bucket out of range after hammer: %v", tokens)
	}
}

func TestBulkheadHammer(t *testing.T) {
	b := NewBulkhead(4)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 250; i++ {
				switch i % 2 {
				case 0:
					if b.TryAcquire() {
						if b.InUse() < 1 {
							panic("held slot but InUse < 1")
						}
						b.Release()
					}
				case 1:
					if err := b.Acquire(ctx); err == nil {
						b.Release()
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := b.InUse(); got != 0 {
		t.Fatalf("slots leaked: InUse = %d after every acquire was released", got)
	}
}
