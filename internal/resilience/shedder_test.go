package resilience

import (
	"testing"
	"time"

	"wstrust/internal/simclock"
)

func TestShedderPriorityOrder(t *testing.T) {
	clock := simclock.NewVirtual()
	s := NewShedder(ShedderConfig{Rate: 10, Burst: 100}, clock)

	// Drain the bucket with Critical traffic (reserve 0: admitted to the
	// last whole token) without advancing the clock, then check each class
	// against its floor.
	admitted := 0
	for s.Admit(Critical) {
		admitted++
		if admitted > 200 {
			t.Fatal("critical admissions never exhausted a 100-token bucket")
		}
	}
	if admitted != 100 {
		t.Fatalf("critical drained %d tokens from a 100-token bucket", admitted)
	}
	for _, p := range []Priority{Low, Normal, High, Critical} {
		if s.Admit(p) {
			t.Fatalf("%v admitted on an empty bucket", p)
		}
	}

	// Refill 30 tokens: above Normal's 25-token floor, below Low's 60.
	clock.Advance(3 * time.Second)
	if s.Admit(Low) {
		t.Fatal("low admitted below its reserve floor")
	}
	if !s.Admit(Normal) {
		t.Fatal("normal shed above its reserve floor")
	}
	if !s.Admit(High) {
		t.Fatal("high shed above its reserve floor")
	}

	st := s.Stats()
	if st.Shed[Low] != 2 || st.Admitted[Normal] != 1 || st.Admitted[High] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalAdmitted() != 102 {
		t.Fatalf("TotalAdmitted = %d, want 102", st.TotalAdmitted())
	}
}

func TestShedderRefillCapsAtBurst(t *testing.T) {
	clock := simclock.NewVirtual()
	s := NewShedder(ShedderConfig{Rate: 5, Burst: 20}, clock)

	for i := 0; i < 20; i++ {
		if !s.Admit(Critical) {
			t.Fatalf("admission %d refused from a full bucket", i)
		}
	}
	if got := s.Tokens(); got != 0 {
		t.Fatalf("tokens after drain = %v, want 0", got)
	}
	clock.Advance(2 * time.Second)
	if got := s.Tokens(); got != 10 {
		t.Fatalf("tokens after 2s at rate 5 = %v, want 10", got)
	}
	clock.Advance(time.Hour)
	if got := s.Tokens(); got != 20 {
		t.Fatalf("tokens after an idle hour = %v, want Burst=20", got)
	}
}

func TestShedderDeterministicUnderVirtualClock(t *testing.T) {
	run := func() ShedStats {
		clock := simclock.NewVirtual()
		s := NewShedder(ShedderConfig{Rate: 8, Burst: 16}, clock)
		for i := 0; i < 400; i++ {
			s.Admit(Priority(i % int(numPriorities)))
			if i%3 == 0 {
				clock.Advance(50 * time.Millisecond)
			}
		}
		return s.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical virtual-clock runs diverged:\n  %+v\n  %+v", a, b)
	}
}

func TestShedderDefaultsAndBounds(t *testing.T) {
	clock := simclock.NewVirtual()
	s := NewShedder(ShedderConfig{}, clock) // all defaults: rate 1, burst 1
	if !s.Admit(Critical) {
		t.Fatal("default shedder refused the first critical request")
	}
	if s.Admit(Critical) {
		t.Fatal("default 1-token bucket admitted a second request instantly")
	}
	// Out-of-range priorities are treated as Low, not panics.
	if s.Admit(Priority(99)) {
		t.Fatal("out-of-range priority admitted on an empty bucket")
	}
	if got := s.Stats().Shed[Low]; got != 1 {
		t.Fatalf("out-of-range priority shed count landed on %v classes, want Low=1, got %d", s.Stats().Shed, got)
	}
}
