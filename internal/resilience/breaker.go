// Package resilience protects the serving path around the paper's central
// QoS registry (Figure 2) from the failure modes Section 5 only names:
// a registry that is down, slow, or overloaded. It supplies the classic
// serving-layer primitives — circuit breaker, token-bucket load shedder
// with priority classes, bulkhead semaphores, and per-request deadline
// budgets that compose with the fault package's retry policies — all
// clock-abstracted: simulations and tests drive them from a
// simclock.Virtual so every trip, shed and probe replays byte-for-byte
// from a seed, while the wsxd daemon runs the same code on the wall clock
// (simclock.Wall).
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wstrust/internal/simclock"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed passes traffic and counts consecutive failures.
	Closed State = iota
	// Open fast-fails everything until the cooldown elapses.
	Open
	// HalfOpen admits one probe at a time; enough consecutive probe
	// successes re-close the circuit, any failure re-opens it.
	HalfOpen
)

// String renders the state for logs and tables.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrOpen is returned by Breaker.Do when the circuit fast-fails a call.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerConfig tunes a circuit breaker. The zero value gets sane
// defaults from normalized.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// the circuit (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays Open before admitting a
	// half-open probe (default 30s).
	Cooldown time.Duration
	// Jitter spreads each trip's cooldown uniformly over
	// [1-Jitter, 1+Jitter] × Cooldown (default 0.1), so a fleet of
	// breakers tripped by one outage does not probe in lockstep. The
	// draw comes from the breaker's seeded stream: simulated breakers
	// jitter reproducibly.
	Jitter float64
	// HalfOpenProbes is the number of consecutive probe successes that
	// re-close the circuit (default 1).
	HalfOpenProbes int
}

func (c BreakerConfig) normalized() BreakerConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.1
	}
	if c.HalfOpenProbes < 1 {
		c.HalfOpenProbes = 1
	}
	return c
}

// BreakerStats is a snapshot of a breaker's accounting.
type BreakerStats struct {
	State     State
	Trips     int64 // Closed/HalfOpen → Open transitions
	FastFails int64 // calls refused without reaching the dependency
	Probes    int64 // half-open trial calls admitted
}

// Breaker is a closed/open/half-open circuit breaker. It never reads the
// wall clock directly: time comes from the injected Clock and the probe
// jitter from the injected seeded stream, so breakers inside simulations
// are deterministic. Safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	clock simclock.Clock

	mu        sync.Mutex
	rng       *rand.Rand // guarded by mu
	state     State      // guarded by mu
	failures  int        // guarded by mu; consecutive failures while Closed
	successes int        // guarded by mu; consecutive probe successes while HalfOpen
	probing   bool       // guarded by mu; a half-open probe is in flight
	reopenAt  time.Time  // guarded by mu; when Open yields to HalfOpen
	trips     int64      // guarded by mu
	fastFails int64      // guarded by mu
	probes    int64      // guarded by mu
}

// NewBreaker builds a breaker over the given clock. rng supplies the
// cooldown jitter and may be nil for none (typically simclock.Stream in
// simulations, a seeded stream in the daemon).
func NewBreaker(cfg BreakerConfig, clock simclock.Clock, rng *rand.Rand) *Breaker {
	if clock == nil {
		panic("resilience: NewBreaker requires a clock")
	}
	return &Breaker{cfg: cfg.normalized(), clock: clock, rng: rng}
}

// Allow reports whether a call may proceed, advancing Open → HalfOpen
// when the cooldown has elapsed. Callers that get true must report the
// call's outcome via Success or Failure; callers that get false must not
// touch the dependency (that is the point).
//
//lint:hotpath gate on every guarded call; a short critical section, no allocation
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clock.Now().Before(b.reopenAt) {
			b.fastFails++
			return false
		}
		b.state = HalfOpen
		b.successes = 0
		b.probing = false
		fallthrough
	default: // HalfOpen: one probe in flight at a time
		if b.probing {
			b.fastFails++
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

// Success reports a completed call.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.state = Closed
			b.failures = 0
		}
	}
}

// Failure reports a failed call: while Closed it counts toward the trip
// threshold, while HalfOpen it re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	case HalfOpen:
		b.probing = false
		b.tripLocked()
	}
}

// tripLocked opens the circuit with a jittered cooldown.
//
//lint:guarded tripLocked runs with b.mu held by Failure
func (b *Breaker) tripLocked() {
	b.state = Open
	b.failures = 0
	b.trips++
	d := b.cfg.Cooldown
	if b.rng != nil && b.cfg.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + b.cfg.Jitter*(2*b.rng.Float64()-1)))
	}
	b.reopenAt = b.clock.Now().Add(d)
}

// Do runs op under the breaker: fast-fails with ErrOpen when the circuit
// refuses the call, otherwise reports op's outcome into the state machine
// and returns its error.
func (b *Breaker) Do(op func() error) error {
	if !b.Allow() {
		return ErrOpen
	}
	if err := op(); err != nil {
		b.Failure()
		return err
	}
	b.Success()
	return nil
}

// State reports the current position (advancing Open → HalfOpen is left
// to Allow, so a quiesced breaker reads as Open until the next call).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the accounting.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{State: b.state, Trips: b.trips, FastFails: b.fastFails, Probes: b.probes}
}
