package resilience

import (
	"context"
	"sync/atomic"
)

// Bulkhead is a concurrency compartment: at most capacity callers hold a
// slot at once, so one slow dependency cannot absorb every goroutine in
// the process — the naval metaphor the pattern is named for. Safe for
// concurrent use.
type Bulkhead struct {
	slots    chan struct{}
	rejected atomic.Int64
}

// NewBulkhead builds a compartment with the given capacity (minimum 1).
func NewBulkhead(capacity int) *Bulkhead {
	if capacity < 1 {
		capacity = 1
	}
	return &Bulkhead{slots: make(chan struct{}, capacity)}
}

// TryAcquire grabs a slot only if one is free right now; false is the
// caller's cue to fast-fail. Pair every true with a Release.
func (b *Bulkhead) TryAcquire() bool {
	select {
	case b.slots <- struct{}{}:
		return true
	default:
		b.rejected.Add(1)
		return false
	}
}

// Acquire blocks for a slot until ctx is done; a ctx error counts as a
// rejection. Pair every nil return with a Release.
func (b *Bulkhead) Acquire(ctx context.Context) error {
	select {
	case b.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case b.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		b.rejected.Add(1)
		return ctx.Err()
	}
}

// Release frees a slot. Releasing more than was acquired panics — that is
// a caller bug, not load.
func (b *Bulkhead) Release() {
	select {
	case <-b.slots:
	default:
		panic("resilience: Bulkhead.Release without Acquire")
	}
}

// InUse reports how many slots are currently held.
func (b *Bulkhead) InUse() int { return len(b.slots) }

// Capacity reports the compartment size.
func (b *Bulkhead) Capacity() int { return cap(b.slots) }

// Rejected reports how many acquisitions were refused or abandoned.
func (b *Bulkhead) Rejected() int64 { return b.rejected.Load() }
