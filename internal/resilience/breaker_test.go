package resilience

import (
	"errors"
	"testing"
	"time"

	"wstrust/internal/simclock"
)

func newTestBreaker(cfg BreakerConfig) (*Breaker, *simclock.Virtual) {
	clock := simclock.NewVirtual()
	return NewBreaker(cfg, clock, simclock.Stream(42, "breaker-test")), clock
}

func TestBreakerTripAndRecover(t *testing.T) {
	b, clock := newTestBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, Jitter: 0})

	if b.State() != Closed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure trips
	if b.State() != Open {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	clock.Advance(time.Minute) // jitter 0 → exactly Cooldown
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown Allow = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted while one is in flight")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}

	st := b.Stats()
	if st.Trips != 1 || st.Probes != 1 {
		t.Fatalf("stats = %+v, want 1 trip and 1 probe", st)
	}
	if st.FastFails != 2 {
		t.Fatalf("FastFails = %d, want 2 (one open refusal, one probe collision)", st.FastFails)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clock := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute, Jitter: 0})

	b.Allow()
	b.Failure()
	clock.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
	if got := b.Stats().Trips; got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
}

func TestBreakerMultiProbeClose(t *testing.T) {
	b, clock := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute, Jitter: 0, HalfOpenProbes: 2})

	b.Allow()
	b.Failure()
	clock.Advance(time.Minute)

	b.Allow()
	b.Success()
	if b.State() != HalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", b.State())
	}
	b.Allow()
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", b.State())
	}
}

func TestBreakerJitterDeterministic(t *testing.T) {
	cooldowns := func() []time.Duration {
		clock := simclock.NewVirtual()
		b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour, Jitter: 0.2},
			clock, simclock.Stream(42, "jitter"))
		var out []time.Duration
		for i := 0; i < 5; i++ {
			b.Allow()
			b.Failure() // trip
			b.mu.Lock()
			out = append(out, b.reopenAt.Sub(clock.Now()))
			b.mu.Unlock()
			clock.Advance(2 * time.Hour) // past any jittered cooldown
			b.Allow()                    // half-open probe
			b.Success()                  // close again for the next round
		}
		return out
	}

	a, bb := cooldowns(), cooldowns()
	lo := time.Duration(float64(time.Hour) * 0.8)
	hi := time.Duration(float64(time.Hour) * 1.2)
	varied := false
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("cooldown %d differs across identically seeded runs: %s vs %s", i, a[i], bb[i])
		}
		if a[i] < lo || a[i] > hi {
			t.Fatalf("cooldown %d = %s outside jitter band [%s, %s]", i, a[i], lo, hi)
		}
		if a[i] != time.Hour {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter 0.2 never moved the cooldown off its base")
	}
}

func TestBreakerDo(t *testing.T) {
	b, clock := newTestBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute, Jitter: 0})
	boom := errors.New("boom")

	for i := 0; i < 2; i++ {
		if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("Do error = %v, want boom", err)
		}
	}
	if err := b.Do(func() error { t.Fatal("op ran while open"); return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("Do while open = %v, want ErrOpen", err)
	}
	clock.Advance(time.Minute)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe Do = %v, want nil", err)
	}
	if b.State() != Closed {
		t.Fatalf("state after successful Do probe = %v, want closed", b.State())
	}
}

func TestBreakerNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBreaker(nil clock) did not panic")
		}
	}()
	NewBreaker(BreakerConfig{}, nil, nil)
}
