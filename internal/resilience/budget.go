package resilience

import (
	"time"

	"wstrust/internal/fault"
	"wstrust/internal/simclock"
)

// Budget is a per-request deadline in clock time: the single allowance a
// request gets for everything it does — queueing, the call itself, and
// every retry. Derived work (a retry schedule, a sub-call) asks the
// budget whether it still Fits instead of keeping its own timer, which is
// how retries are prevented from overrunning the caller's deadline.
type Budget struct {
	clock    simclock.Clock
	deadline time.Time
}

// NewBudget starts a budget of d from the clock's current instant.
func NewBudget(clock simclock.Clock, d time.Duration) Budget {
	if clock == nil {
		panic("resilience: NewBudget requires a clock")
	}
	return Budget{clock: clock, deadline: clock.Now().Add(d)}
}

// Deadline is the absolute instant the budget expires.
func (b Budget) Deadline() time.Time { return b.deadline }

// Remaining is the allowance left, floored at zero.
func (b Budget) Remaining() time.Duration {
	if r := b.deadline.Sub(b.clock.Now()); r > 0 {
		return r
	}
	return 0
}

// Exceeded reports whether the deadline has passed.
func (b Budget) Exceeded() bool { return b.Remaining() == 0 }

// Fits reports whether spending d now would stay inside the budget.
func (b Budget) Fits(d time.Duration) bool { return d <= b.Remaining() }

// BudgetedRetrier implements p2p.Retrier by composing a fault.Policy's
// seeded backoff schedule with a Budget: the attempt count is trimmed at
// construction to the longest schedule prefix whose cumulative backoff
// the budget can cover, so transport retries can never overrun the
// caller's deadline no matter how generous the policy is. Backoff
// advances the bound virtual clock exactly like fault.Retrier (the
// network never sleeps).
type BudgetedRetrier struct {
	attempts int
	sched    []time.Duration
	clock    *simclock.Virtual
}

// UnderBudget compiles the policy's schedule for seed and trims it to the
// budget. clock may be nil (backoff then costs no virtual time).
func UnderBudget(p fault.Policy, seed int64, budget Budget, clock *simclock.Virtual) *BudgetedRetrier {
	full := p.Schedule(seed)
	remaining := budget.Remaining()
	var cum time.Duration
	kept := 0
	for _, d := range full {
		if cum+d > remaining {
			break
		}
		cum += d
		kept++
	}
	return &BudgetedRetrier{attempts: kept + 1, sched: full[:kept], clock: clock}
}

// Attempts implements p2p.Retrier: the budget-trimmed attempt bound.
func (r *BudgetedRetrier) Attempts() int { return r.attempts }

// Backoff implements p2p.Retrier: retry number attempt (1-based) waits
// its scheduled delay in virtual time.
func (r *BudgetedRetrier) Backoff(attempt int) {
	i := attempt - 1
	if i < 0 || i >= len(r.sched) {
		return
	}
	if r.clock != nil {
		r.clock.Advance(r.sched[i])
	}
}

// Schedule exposes the trimmed backoff schedule (for tests and tables).
func (r *BudgetedRetrier) Schedule() []time.Duration {
	out := make([]time.Duration, len(r.sched))
	copy(out, r.sched)
	return out
}
