package resilience

import (
	"testing"
	"time"
)

func TestParseProfile(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		check   func(t *testing.T, p Profile)
	}{
		{in: "", check: func(t *testing.T, p Profile) {
			if p.Enabled() {
				t.Fatalf("empty profile enabled: %+v", p)
			}
		}},
		{in: "none", check: func(t *testing.T, p Profile) {
			if p.Enabled() || p.String() != "none" {
				t.Fatalf("none profile = %+v (%s)", p, p)
			}
		}},
		{in: "breaker", check: func(t *testing.T, p Profile) {
			if p.Breaker == nil || p.Breaker.FailureThreshold != 3 || p.Breaker.Cooldown != 90*time.Minute {
				t.Fatalf("breaker preset = %+v", p.Breaker)
			}
		}},
		{in: "naive", check: func(t *testing.T, p Profile) {
			if p.Breaker != nil || p.Attempts != 3 {
				t.Fatalf("naive preset = %+v", p)
			}
		}},
		{in: "threshold=2,cooldown=45m,jitter=0.2", check: func(t *testing.T, p Profile) {
			if p.Breaker == nil {
				t.Fatal("threshold key did not imply a breaker")
			}
			if p.Breaker.FailureThreshold != 2 || p.Breaker.Cooldown != 45*time.Minute || p.Breaker.Jitter != 0.2 {
				t.Fatalf("custom breaker = %+v", p.Breaker)
			}
		}},
		{in: "attempts=5", check: func(t *testing.T, p Profile) {
			if p.Breaker != nil || p.Attempts != 5 || !p.Enabled() {
				t.Fatalf("attempts profile = %+v", p)
			}
		}},
		{in: "breaker=on", check: func(t *testing.T, p Profile) {
			if p.Breaker == nil {
				t.Fatal("breaker=on left Breaker nil")
			}
		}},
		{in: "bogus", wantErr: true},
		{in: "threshold=zero", wantErr: true},
		{in: "threshold=0", wantErr: true},
		{in: "cooldown=-5m", wantErr: true},
		{in: "jitter=1.5", wantErr: true},
		{in: "attempts=0", wantErr: true},
		{in: "volume=11", wantErr: true},
	}
	for _, tc := range cases {
		p, err := ParseProfile(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseProfile(%q) = %+v, want error", tc.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseProfile(%q) error: %v", tc.in, err)
			continue
		}
		tc.check(t, p)
	}
}

func TestProfileString(t *testing.T) {
	p, err := ParseProfile("breaker")
	if err != nil {
		t.Fatal(err)
	}
	want := "breaker,breaker(threshold=3,cooldown=1h30m0s,probes=1)"
	if got := p.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	n, err := ParseProfile("naive")
	if err != nil {
		t.Fatal(err)
	}
	if got := n.String(); got != "naive,attempts=3" {
		t.Fatalf("naive String() = %q", got)
	}
}
