package chaos

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"wstrust/internal/registry"
	"wstrust/internal/simclock"
)

// startT opens a node or fails the test.
func startT(t *testing.T, c *Cluster, name string) *Node {
	t.Helper()
	n, err := c.Start(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Stop() })
	return n
}

// submitRange acks records [from, to) on n, failing the test on any
// rejection.
func submitRange(t *testing.T, n *Node, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := n.Submit(Feedback(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

// assertHolds fails unless every record in [from, to) is present on the
// store.
func assertHolds(t *testing.T, n *Node, from, to int, label string) {
	t.Helper()
	for i := from; i < to; i++ {
		if !Holds(n.Store, i) {
			t.Fatalf("%s: %s lost record %d", label, n.Name, i)
		}
	}
}

// TestChaosKillPrimaryPromoteRejoin is the headline scenario the
// replication contract promises to survive: kill -9 the primary
// mid-group-commit while two followers tail it, promote the
// most-caught-up follower under a fencing epoch, re-point the other
// follower, take new writes, then restart the dead primary from its
// crash image and rejoin it behind the fence. Every record replicated
// before the crash must survive on the majority; every record the dead
// primary acked must be in its crash image; the three survivors must
// converge to byte-identical exports. Deterministic under the fixed
// seed.
func TestChaosKillPrimaryPromoteRejoin(t *testing.T) {
	c := NewCluster(t.TempDir(), 42)
	a := startT(t, c, "a")
	b := startT(t, c, "b")
	d := startT(t, c, "d")
	if err := b.Follow(a.URL(), 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Follow(a.URL(), 2); err != nil {
		t.Fatal(err)
	}

	// Phase 1: a replicated baseline both followers hold in full.
	submitRange(t, a, 0, 200)
	if err := WaitCaughtUp(a.Store.LastSeq(), b, d); err != nil {
		t.Fatal(err)
	}

	// Phase 2: hammer the primary from concurrent writers and kill it
	// mid-flight. Submits that error after the kill were never acked and
	// carry no guarantee; everything recorded in acked was.
	var mu sync.Mutex
	acked := make(map[int]bool)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := 200 + w*100000 + i
				if err := a.Submit(Feedback(idx)); err != nil {
					return // killed under us: unacked, no guarantee
				}
				mu.Lock()
				acked[idx] = true
				mu.Unlock()
			}
		}()
	}
	for a.Store.LastSeq() < 260 {
		simclock.SleepWall(time.Millisecond)
	}
	// Freeze the survival obligation before the crash: everything acked
	// by this point must be in the image (the image is copied after this
	// moment, so it holds at least these). Acks that land while the
	// image is being copied are a race the contract doesn't cover.
	mu.Lock()
	ackedAtKill := make(map[int]bool, len(acked))
	for idx := range acked {
		ackedAtKill[idx] = true
	}
	mu.Unlock()
	img, err := c.Kill(a)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Promote the most-caught-up follower; the phase-1 baseline was on
	// both, so it must survive the promotion wholesale.
	newP, other := b, d
	if d.Store.LastSeq() > b.Store.LastSeq() {
		newP, other = d, b
	}
	epoch, err := newP.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promoted to epoch %d, want 1", epoch)
	}
	assertHolds(t, newP, 0, 200, "post-promote")

	// The other follower re-points at the new primary and the cluster
	// takes new writes under the new epoch.
	other.StopFollow()
	if err := other.Follow(newP.URL(), 3); err != nil {
		t.Fatal(err)
	}
	submitRange(t, newP, 900000, 900050)

	// The dead primary's crash image must hold every submit it acked —
	// acked means fsynced at SyncEvery 1, and a crash loses nothing that
	// was fsynced.
	a2, err := c.StartAt("a2", img)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a2.Stop() })
	if a2.Rec.Records() != a2.Store.Len() {
		t.Fatalf("recovery overstates: reported %d, store holds %d", a2.Rec.Records(), a2.Store.Len())
	}
	assertHolds(t, a2, 0, 200, "crash image")
	for idx := range ackedAtKill {
		if !Holds(a2.Store, idx) {
			t.Fatalf("crash image lost acked record %d", idx)
		}
	}

	// Rejoin behind the fence: the old primary follows the new one,
	// discards its unreplicated suffix if the histories diverged, and
	// the three nodes converge to byte-identical exports.
	if err := a2.Follow(newP.URL(), 4); err != nil {
		t.Fatal(err)
	}
	digest, err := WaitConverged(newP, other, a2)
	if err != nil {
		t.Fatal(err)
	}
	if digest == "" {
		t.Fatal("empty convergence digest")
	}
	for _, n := range []*Node{newP, other, a2} {
		assertHolds(t, n, 0, 200, "converged baseline")
		assertHolds(t, n, 900000, 900050, "converged new-epoch writes")
		if got := n.Store.Epoch(); got != epoch {
			t.Fatalf("%s at epoch %d after convergence, want %d", n.Name, got, epoch)
		}
	}
}

// TestChaosPartitionPromoteFencesOldPrimary drives the split-brain
// edge: a follower is partitioned away and promoted while the old
// primary keeps acking writes on its side. The fencing epoch must cut
// both directions — the promoted node refuses to sync from the deposed
// primary (no wipe of its promoted state), the deposed primary's
// stream endpoint refuses a fenced cursor with 403 — and the deposed
// primary rejoining as a follower discards its divergent suffix.
func TestChaosPartitionPromoteFencesOldPrimary(t *testing.T) {
	c := NewCluster(t.TempDir(), 7)
	a := startT(t, c, "a")
	b := startT(t, c, "b")
	if err := b.Follow(a.URL(), 1); err != nil {
		t.Fatal(err)
	}
	submitRange(t, a, 0, 50)
	if err := WaitCaughtUp(a.Store.LastSeq(), b); err != nil {
		t.Fatal(err)
	}

	// Partition: b stops hearing from a; a keeps acking a divergent
	// suffix on its side.
	b.StopFollow()
	submitRange(t, a, 1000, 1030)

	epoch, err := b.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promoted to epoch %d, want 1", epoch)
	}
	submitRange(t, b, 2000, 2010)
	lenAtPromote := b.Store.Len()

	// Direction 1: the deposed primary must refuse to feed a fenced
	// follower — 403 on the stream, no frames.
	resp, err := http.Get(a.URL() + "/wal/stream?from=0&fromEpoch=0&fence=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("deposed primary served a fenced cursor: status %d, want 403", resp.StatusCode)
	}

	// Direction 2: the promoted node, even if misconfigured to follow
	// the deposed primary, must refuse to sync from the stale epoch —
	// its state stays intact.
	if err := b.Follow(a.URL(), 2); err != nil {
		t.Fatal(err)
	}
	simclock.SleepWall(100 * time.Millisecond)
	b.StopFollow()
	if got := b.Store.Epoch(); got != epoch {
		t.Fatalf("promoted node regressed to epoch %d", got)
	}
	if got := b.Store.Len(); got != lenAtPromote {
		t.Fatalf("promoted node's state changed under a stale source: %d records, want %d", got, lenAtPromote)
	}
	assertHolds(t, b, 2000, 2010, "stale-source refusal")

	// Rejoin: the deposed primary follows the promoted node, drops its
	// divergent suffix, and the pair converges byte-identically.
	if err := a.Follow(b.URL(), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := WaitConverged(b, a); err != nil {
		t.Fatal(err)
	}
	assertHolds(t, a, 0, 50, "rejoined baseline")
	assertHolds(t, a, 2000, 2010, "rejoined new-epoch writes")
	for i := 1000; i < 1030; i++ {
		if Holds(a.Store, i) {
			t.Fatalf("divergent suffix record %d survived the fence", i)
		}
	}
	if got := a.Store.Epoch(); got != epoch {
		t.Fatalf("rejoined node at epoch %d, want %d", got, epoch)
	}
}

// TestChaosCorruptionRecoveryHonesty feeds seeded torn tails and bit
// flips to the WAL and snapshot of a stopped node and re-opens each
// mutilated image. Recovery must never panic, never invent records
// (everything recovered is a record that was acked), and never
// overstate (the reported count equals what the store actually holds).
// A corrupt snapshot must degrade to WAL-only replay with the warning
// set, not fail the open.
func TestChaosCorruptionRecoveryHonesty(t *testing.T) {
	c := NewCluster(t.TempDir(), 13)
	a := startT(t, c, "a")
	submitRange(t, a, 0, 120)
	if err := a.Store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	submitRange(t, a, 120, 180) // 120 in the snapshot, 60 in the WAL
	if err := a.Stop(); err != nil {
		t.Fatal(err)
	}

	const total = 180
	reopen := func(t *testing.T, dir string) (*registry.Store, registry.Recovery) {
		t.Helper()
		st, rec, err := registry.Open(dir, registry.WALOptions{})
		if err != nil {
			t.Fatalf("open corrupt image: %v", err)
		}
		t.Cleanup(func() { _ = st.Close() })
		// Honesty: reported == held, and everything held was acked.
		if rec.Records() != st.Len() {
			t.Fatalf("recovery overstates: reported %d, store holds %d", rec.Records(), st.Len())
		}
		held := 0
		for i := 0; i < total; i++ {
			if Holds(st, i) {
				held++
			}
		}
		if held != st.Len() {
			t.Fatalf("store holds %d records but only %d match acked submits", st.Len(), held)
		}
		return st, rec
	}

	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("torn-wal-%d", round), func(t *testing.T) {
			dir := copyImage(t, a.Dir)
			if _, err := c.TornTail(filepath.Join(dir, WALFile), 300); err != nil {
				t.Fatal(err)
			}
			st, _ := reopen(t, dir)
			if st.Len() < 120 {
				t.Fatalf("torn WAL tail lost snapshotted records: %d < 120", st.Len())
			}
		})
		t.Run(fmt.Sprintf("bitflip-wal-%d", round), func(t *testing.T) {
			dir := copyImage(t, a.Dir)
			if _, err := c.FlipBit(filepath.Join(dir, WALFile)); err != nil {
				t.Fatal(err)
			}
			st, _ := reopen(t, dir)
			if st.Len() < 120 {
				t.Fatalf("WAL bit flip lost snapshotted records: %d < 120", st.Len())
			}
		})
		t.Run(fmt.Sprintf("bitflip-snapshot-%d", round), func(t *testing.T) {
			dir := copyImage(t, a.Dir)
			if _, err := c.FlipBit(filepath.Join(dir, SnapshotFile)); err != nil {
				t.Fatal(err)
			}
			st, rec := reopen(t, dir)
			if !rec.SnapshotCorrupt {
				t.Fatal("bit-flipped snapshot not reported corrupt")
			}
			// WAL-only fallback: the post-compaction suffix survives.
			if st.Len() != 60 {
				t.Fatalf("WAL-only fallback holds %d records, want 60", st.Len())
			}
		})
	}
}

// copyImage clones a node's durable files into a fresh directory for
// mutilation.
func copyImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for _, name := range []string{WALFile, SnapshotFile, EpochFile} {
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}
