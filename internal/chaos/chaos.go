// Package chaos is a deterministic crash/corruption harness for the
// replicated registry. It runs a small cluster of registry-backed nodes
// in one process — each node a real *registry.Store behind a real HTTP
// server mounting the replica endpoints, followers tailing primaries
// over actual sockets — and injects the failures the replication
// contract (DESIGN.md §10) promises to survive:
//
//   - kill -9 mid-group-commit, simulated the same way the registry's
//     own crash tests do it: the live WAL bytes are copied while
//     concurrent submitters are mid-flight, and the node restarts from
//     that byte image, never from the cleanly-closed directory;
//   - torn tails and seeded bit flips in WAL and snapshot files, driven
//     by a named deterministic RNG stream so a failing seed replays
//     exactly;
//   - partition, follower promotion under a new fencing epoch, and the
//     deposed primary rejoining as a fenced follower.
//
// The harness is a library: scenarios live in the package tests and in
// make chaos-smoke. All time is simclock time (wall clock, sanctioned
// sleep) and all randomness comes from simclock streams, so a scenario
// is replayable from its seed alone.
package chaos

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"wstrust/internal/core"
	"wstrust/internal/fault"
	"wstrust/internal/qos"
	"wstrust/internal/registry"
	"wstrust/internal/replica"
	"wstrust/internal/resilience"
	"wstrust/internal/simclock"
)

// File names a node's durable state lives in — mirrored from the
// registry so corruption targets can be named without exporting them.
const (
	WALFile      = "wal.wsx"
	SnapshotFile = "snapshot.wsx"
	EpochFile    = "epoch.wsx"
)

// Cluster owns a set of nodes rooted in one directory and the seeded
// randomness that drives corruption decisions.
type Cluster struct {
	root   string
	seed   int64
	rng    *randStream
	crash  int // crash-image counter, so image dirs never collide
	SyncEv int // WAL SyncEvery for new nodes (default 1: acked ⇒ fsynced)
}

// randStream wraps the deterministic stream so corruption choices are a
// pure function of (seed, call order).
type randStream struct{ r interface{ Intn(int) int } }

// NewCluster roots a cluster at dir with all randomness derived from
// seed.
func NewCluster(dir string, seed int64) *Cluster {
	return &Cluster{
		root:   dir,
		seed:   seed,
		rng:    &randStream{r: simclock.Stream(seed, "chaos.corrupt")},
		SyncEv: 1,
	}
}

// Node is one member of the cluster: a durable store behind a live HTTP
// server serving the replication endpoints, optionally running a
// follower loop against another node.
type Node struct {
	Name  string
	Dir   string
	Store *registry.Store
	Rec   registry.Recovery

	srv   *httptest.Server
	drain chan struct{}

	fol       *replica.Follower
	folCancel context.CancelFunc
	folDone   chan struct{}

	dead bool
}

// Start opens a node named name on a fresh directory under the cluster
// root.
func (c *Cluster) Start(name string) (*Node, error) {
	return c.StartAt(name, filepath.Join(c.root, name))
}

// StartAt opens a node named name on an explicit directory — the restart
// path: pass a crash-image directory captured by Kill to boot the node
// from exactly the bytes the crash left behind.
func (c *Cluster) StartAt(name, dir string) (*Node, error) {
	st, rec, err := registry.Open(dir, registry.WALOptions{SyncEvery: c.SyncEv})
	if err != nil {
		return nil, fmt.Errorf("chaos: start %s: %w", name, err)
	}
	n := &Node{Name: name, Dir: dir, Store: st, Rec: rec, drain: make(chan struct{})}
	src := &replica.Source{Store: st, Drain: n.drain}
	mux := http.NewServeMux()
	src.Register(mux)
	n.srv = httptest.NewServer(mux)
	return n, nil
}

// URL is the node's base URL, the address followers point at.
func (n *Node) URL() string { return n.srv.URL }

// Submit writes one feedback through the node's durable path. An error
// means the record was NOT acked and carries no survival guarantee.
func (n *Node) Submit(fb core.Feedback) error { return n.Store.Submit(fb) }

// Follow starts a follower loop tailing primaryURL, tuned for the
// harness: millisecond backoff and a fast-cooldown breaker so scenarios
// converge quickly, with every delay still coming from the seeded
// schedule.
func (n *Node) Follow(primaryURL string, seed int64) error {
	if n.fol != nil {
		return errors.New("chaos: node already following")
	}
	fol, err := replica.New(replica.Config{
		Primary: primaryURL,
		Store:   n.Store,
		Policy:  fault.Policy{MaxAttempts: 6, Base: time.Millisecond, Cap: 20 * time.Millisecond, Multiplier: 2},
		Breaker: resilience.BreakerConfig{FailureThreshold: 8, Cooldown: 5 * time.Millisecond},
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		fol.Run(ctx)
	}()
	n.fol, n.folCancel, n.folDone = fol, cancel, done
	return nil
}

// StopFollow cancels the follower loop and waits for it to exit — the
// harness's partition primitive: the node keeps serving reads from what
// it has, but no more frames arrive.
func (n *Node) StopFollow() {
	if n.folCancel == nil {
		return
	}
	n.folCancel()
	<-n.folDone
	n.fol, n.folCancel, n.folDone = nil, nil, nil
}

// Lag reports the follower's staleness bound, or (0,false) when the
// node is not following.
func (n *Node) Lag() (uint64, bool) {
	if n.fol == nil {
		return 0, false
	}
	return n.fol.Lag()
}

// Promote fences the node into a new primary epoch: the follower loop
// (if any) stops first, then the durable mark history gains the new
// epoch. Returns the new epoch.
func (n *Node) Promote() (uint64, error) {
	n.StopFollow()
	return n.Store.Promote()
}

// Kill simulates kill -9: it captures the node's durable files as raw
// bytes — read live, mid-whatever-the-writers-are-doing, exactly the
// image a crash would leave — into a fresh directory, then tears the
// process-local node down. Restart the "machine" with StartAt(name,
// imageDir). The cleanly-closed original directory is never reused; the
// crash image is the only truth a restarted node sees.
func (c *Cluster) Kill(n *Node) (imageDir string, err error) {
	c.crash++
	imageDir = filepath.Join(c.root, fmt.Sprintf("%s-crash%d", n.Name, c.crash))
	if err := os.MkdirAll(imageDir, 0o755); err != nil {
		return "", err
	}
	// Image first, while writers are still in flight: this is the moment
	// of the crash. Files are copied WAL-last so the image never holds a
	// WAL suffix newer than its snapshot horizon.
	for _, name := range []string{EpochFile, SnapshotFile, WALFile} {
		data, rerr := os.ReadFile(filepath.Join(n.Dir, name))
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // never written on this node: absent in the image too
			}
			return "", rerr
		}
		if werr := os.WriteFile(filepath.Join(imageDir, name), data, 0o644); werr != nil {
			return "", werr
		}
	}
	n.teardown()
	return imageDir, nil
}

// Stop shuts the node down cleanly (drain, close) without capturing a
// crash image — the graceful counterpart to Kill.
func (n *Node) Stop() error {
	wasDead := n.dead
	n.teardown()
	if wasDead {
		return errors.New("chaos: node already stopped")
	}
	return nil
}

// teardown severs streams, stops the follower, closes the listener and
// the store. After a Kill the store's own Close still runs — the
// process-local goroutines must exit — but its cleanly-flushed directory
// is abandoned in favor of the crash image.
func (n *Node) teardown() {
	if n.dead {
		return
	}
	n.dead = true
	n.StopFollow()
	close(n.drain)
	n.srv.Close()
	// Close errors after a simulated crash are expected noise; the crash
	// image was captured before this point.
	_ = n.Store.Close()
}

// FlipBit corrupts one seeded-random bit of the file at path — the
// bit-rot injection. Returns the flipped byte offset.
func (c *Cluster) FlipBit(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("chaos: %s is empty, nothing to flip", path)
	}
	off := c.rng.r.Intn(len(data))
	data[off] ^= 1 << uint(c.rng.r.Intn(8))
	return off, os.WriteFile(path, data, 0o644)
}

// TornTail truncates a seeded-random 1..maxCut bytes off the end of the
// file at path — the torn-write injection. Returns how many bytes were
// cut.
func (c *Cluster) TornTail(path string, maxCut int) (int, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if info.Size() == 0 {
		return 0, fmt.Errorf("chaos: %s is empty, nothing to tear", path)
	}
	cut := 1 + c.rng.r.Intn(maxCut)
	if int64(cut) > info.Size() {
		cut = int(info.Size())
	}
	return cut, os.Truncate(path, info.Size()-int64(cut))
}

// ExportDigest renders the store's canonical export and hashes it —
// "byte-identical registry export" is digest equality.
func ExportDigest(st *registry.Store) (string, error) {
	var buf bytes.Buffer
	if err := st.Export(&buf); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// WaitCaughtUp polls until every node's sequence reaches target, or the
// attempt budget runs out. Polling sleeps through the sanctioned wall
// sleep; the default budget is ~10s of millisecond polls.
func WaitCaughtUp(target uint64, nodes ...*Node) error {
	for attempt := 0; attempt < 10000; attempt++ {
		behind := ""
		for _, n := range nodes {
			if n.Store.LastSeq() < target {
				behind = fmt.Sprintf("%s at seq %d < %d", n.Name, n.Store.LastSeq(), target)
				break
			}
		}
		if behind == "" {
			return nil
		}
		if attempt == 9999 {
			return errors.New("chaos: catch-up budget exhausted: " + behind)
		}
		simclock.SleepWall(time.Millisecond)
	}
	return nil
}

// WaitConverged polls until every node holds the same export digest at
// the same sequence, and returns that digest. Convergence is the
// harness's end-state assertion: after any scenario, the survivors must
// agree byte for byte.
func WaitConverged(nodes ...*Node) (string, error) {
	var lastErr error
	for attempt := 0; attempt < 10000; attempt++ {
		digest, seq, ok := "", uint64(0), true
		for i, n := range nodes {
			d, err := ExportDigest(n.Store)
			if err != nil {
				return "", err
			}
			if i == 0 {
				digest, seq = d, n.Store.LastSeq()
				continue
			}
			if d != digest || n.Store.LastSeq() != seq {
				ok = false
				lastErr = fmt.Errorf("chaos: %s (seq %d) disagrees with %s (seq %d)",
					n.Name, n.Store.LastSeq(), nodes[0].Name, seq)
				break
			}
		}
		if ok {
			return digest, nil
		}
		simclock.SleepWall(time.Millisecond)
	}
	return "", fmt.Errorf("chaos: convergence budget exhausted: %w", lastErr)
}

// Feedback builds the i-th deterministic harness record. Each record
// carries a unique consumer, so "did acked submit i survive" is a
// content-addressable membership check on any store.
func Feedback(i int) core.Feedback {
	return core.Feedback{
		Consumer: core.ConsumerID(fmt.Sprintf("chaos-c%06d", i)),
		Service:  core.NewServiceID(i % 5),
		Provider: core.NewProviderID(i % 3),
		Context:  "chaos",
		Observed: qos.Observation{
			Values:  qos.Vector{qos.ResponseTime: 50 + float64(i%100)},
			Success: i%7 != 0,
			At:      simclock.Epoch.Add(time.Duration(i) * time.Second),
		},
		Ratings: map[core.Facet]float64{core.FacetOverall: float64(i%10) / 10},
		At:      simclock.Epoch.Add(time.Duration(i) * time.Second),
	}
}

// Holds reports whether the store contains the i-th harness record —
// the membership side of the acked-submit survival invariant.
func Holds(st *registry.Store, i int) bool {
	return len(st.ForConsumer(core.ConsumerID(fmt.Sprintf("chaos-c%06d", i)))) > 0
}
