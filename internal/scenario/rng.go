package scenario

// Counter-based randomness for the slab engine. Every consumer draws from
// private streams keyed by (seed, round, consumer, purpose), so the draw
// sequence a consumer sees is a pure function of those four values —
// independent of chunk scheduling, worker count and every other
// consumer. That is what makes the parallel epoch loop byte-identical at
// any -parallel level: parallelism changes who computes a consumer's
// round, never what it computes. (math/rand streams are stateful and
// shared, which is exactly what a parallel hot loop cannot have; the
// repo-wide determinism lint bans them here anyway.)
//
// The generator is splitmix64 (Steele, Lea & Flood 2014): a Weyl sequence
// through an avalanching finalizer. Statistical quality is far beyond
// what selection noise needs, and it is 3 integer multiplies per draw
// with zero allocation.

// mix64 is the splitmix64/Murmur3 avalanching finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// smRand is one splitmix64 stream. The zero value is a valid (but fixed)
// stream; build real ones with streamFor.
type smRand struct{ s uint64 }

// streamFor derives the stream for one (round, consumer, purpose)
// triple under a root seed. Distinct purposes give a consumer
// uncorrelated draw sequences for churn, activity and actions, so
// raising one knob never perturbs the draws behind another — the
// common-random-numbers discipline the monotonicity properties rely on.
func streamFor(seed int64, round, consumer int, purpose uint64) smRand {
	x := uint64(seed)
	x = mix64(x ^ (uint64(round)+1)*0x9e3779b97f4a7c15)
	x = mix64(x ^ (uint64(consumer)+1)*0xbf58476d1ce4e5b9)
	return smRand{s: mix64(x ^ purpose*0x94d049bb133111eb)}
}

// Stream purposes.
const (
	purposeChurn uint64 = iota + 1
	purposeActivity
	purposeAction
)

// next returns the stream's next 64 uniform bits.
//
//lint:hotpath drawn several times per consumer per round; pure integer math
func (r *smRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0,1) with 53 random bits.
//
//lint:hotpath see next
func (r *smRand) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0,n). The modulo bias at simulation
// population sizes (n ≤ 10^7 against 2^64) is < 10^-12 — irrelevant for
// candidate sampling, and branch-free.
//
//lint:hotpath see next
func (r *smRand) intn(n int) int {
	return int(r.next() % uint64(n))
}
