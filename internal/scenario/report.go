package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// RoundStats is one simulated round's outcome. Exported fields feed the
// JSON summary; the canonical text report renders a fixed subset.
type RoundStats struct {
	Round       int     `json:"round"`
	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Lost        int64   `json:"lost"`
	MeanRegret  float64 `json:"meanRegret"`
	HitRate     float64 `json:"hitRate"`
	GoodShare   float64 `json:"goodShare"`
	MediumShare float64 `json:"mediumShare"`
	BadShare    float64 `json:"badShare"`
	RepMAE      float64 `json:"repMAE"`

	regretQ   int64
	tierCount [4]int64
}

// TopService is one row of the final reputation leaderboard.
type TopService struct {
	ID         string  `json:"id"`
	Reputation float64 `json:"reputation"`
	Tier       string  `json:"tier"`
}

// Report is one finished scenario run. Text is the canonical rendering:
// everything in it is a pure function of (scenario, seed), with no
// timestamps, durations or worker counts, so its digest is the
// regression surface the golden suite locks down.
type Report struct {
	Scenario *Scenario    `json:"-"`
	Seed     int64        `json:"seed"`
	Rounds   []RoundStats `json:"rounds"`

	Requests    int64        `json:"requests"`
	OK          int64        `json:"ok"`
	Lost        int64        `json:"lost"`
	MeanRegret  float64      `json:"meanRegret"`
	HitRate     float64      `json:"hitRate"`
	FinalRepMAE float64      `json:"finalRepMAE"`
	TopServices []TopService `json:"topServices"`

	Text string `json:"-"`
}

// Digest is the sha256 of the canonical report text, hex-encoded — the
// value the golden scenario suite commits.
func (r *Report) Digest() string {
	sum := sha256.Sum256([]byte(r.Text))
	return hex.EncodeToString(sum[:])
}

// JSON renders the machine-readable summary (wsxsim -json).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Name   string `json:"name"`
		Digest string `json:"digest"`
		*Report
	}{Name: r.Scenario.Name, Digest: r.Digest(), Report: r}, "", "  ")
}

// render builds the canonical text. Formatting discipline: config floats
// print with %g (exact shortest form), measured shares and errors with
// fixed precision — both deterministic across platforms for the pure
// float operations the engine performs.
func (r *Report) render() {
	sc := r.Scenario
	var b strings.Builder
	fmt.Fprintf(&b, "== scenario %s (schema v%d, seed %d) ==\n", sc.Name, sc.Version, r.Seed)
	if sc.Description != "" {
		fmt.Fprintf(&b, "%s\n", sc.Description)
	}
	fmt.Fprintf(&b, "population: %d services (good %g / bad %g, exaggerate %g), %d consumers (heterogeneity %g, %d region(s))\n",
		sc.Population.Services.N, sc.Population.Services.GoodFrac, sc.Population.Services.BadFrac,
		sc.Population.Services.ExaggerateFrac, sc.Population.Consumers.N,
		sc.Population.Consumers.Heterogeneity, sc.Population.Consumers.Regions)
	mech := sc.Mechanism.Kind
	if mech == "decay" {
		mech = fmt.Sprintf("decay(halfLife=%d)", sc.Mechanism.HalfLife)
	}
	if sc.Mechanism.NewcomerReports > 0 {
		mech += fmt.Sprintf(" newcomer(w=%g,k=%d)", sc.Mechanism.NewcomerWeight, sc.Mechanism.NewcomerReports)
	}
	fmt.Fprintf(&b, "mechanism: %s  selection: explore %g, candidates %d, rho %g\n",
		mech, sc.Selection.Explore, sc.Selection.Candidates, sc.Selection.ReputationWeight)
	fmt.Fprintf(&b, "attacks: %s\n", describeAttacks(sc.Attacks))
	fmt.Fprintf(&b, "faults: %s  resilience: %s\n", describeFaults(sc.Faults), describeResilience(sc.Resilience))
	fmt.Fprintf(&b, "traffic: %s\n", describeTraffic(sc.Traffic))
	fmt.Fprintf(&b, "rounds: %d\n", sc.Rounds)

	fmt.Fprintf(&b, "%5s %9s %9s %8s %7s %6s %6s %6s %6s %7s\n",
		"round", "requests", "ok", "lost", "regret", "hit%", "good%", "med%", "bad%", "repMAE")
	for _, row := range r.Rounds {
		fmt.Fprintf(&b, "%5d %9d %9d %8d %7.4f %6.1f %6.1f %6.1f %6.1f %7.4f\n",
			row.Round, row.Requests, row.OK, row.Lost, row.MeanRegret,
			100*row.HitRate, 100*row.GoodShare, 100*row.MediumShare, 100*row.BadShare, row.RepMAE)
	}

	fmt.Fprintf(&b, "summary: requests=%d ok=%d lost=%d meanRegret=%.4f hitRate=%.1f%% finalRepMAE=%.4f\n",
		r.Requests, r.OK, r.Lost, r.MeanRegret, 100*r.HitRate, r.FinalRepMAE)
	for i, t := range r.TopServices {
		fmt.Fprintf(&b, "top %d: %s rep=%.4f tier=%s\n", i+1, t.ID, t.Reputation, t.Tier)
	}
	r.Text = b.String()
}

func describeAttacks(attacks []Attack) string {
	if len(attacks) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(attacks))
	for _, a := range attacks {
		s := fmt.Sprintf("%s %g%%", a.Kind, 100*a.Fraction)
		if a.Kind == "ballot-stuff" || a.Kind == "collusion" {
			s += fmt.Sprintf(" (allies %g%%)", 100*a.AlliedServices)
		}
		if a.Kind == "whitewash" {
			s += fmt.Sprintf(" (inner %s, period %d)", a.Inner, a.Period)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ", ")
}

func describeFaults(f *Faults) string {
	if f == nil || (f.Drop == 0 && len(f.Outages) == 0) {
		return "none"
	}
	var parts []string
	if f.Profile != "" {
		parts = append(parts, "profile "+f.Profile)
	}
	if f.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop %g", f.Drop))
	}
	for _, w := range f.Outages {
		parts = append(parts, fmt.Sprintf("outage [%d,%d)", w.From, w.To))
	}
	return strings.Join(parts, ", ")
}

func describeResilience(r *Resilience) string {
	if r == nil {
		return "breaker"
	}
	return r.Profile
}

func describeTraffic(t Traffic) string {
	var parts []string
	switch t.Shape {
	case "diurnal":
		parts = append(parts, fmt.Sprintf("diurnal rate %g amp %g period %d", t.Rate, t.Amplitude, t.Period))
	default:
		parts = append(parts, fmt.Sprintf("uniform rate %g", t.Rate))
	}
	if fl := t.Flash; fl != nil {
		parts = append(parts, fmt.Sprintf("flash x%g @ [%d,%d)", fl.Multiplier, fl.Round, fl.Round+fl.Width))
	}
	if ch := t.Churn; ch != nil {
		parts = append(parts, fmt.Sprintf("churn leave %g rejoin %g", ch.Leave, ch.Rejoin))
	}
	for _, p := range t.Partitions {
		parts = append(parts, fmt.Sprintf("partition region %d [%d,%d)", p.Region, p.From, p.To))
	}
	return strings.Join(parts, "; ")
}
