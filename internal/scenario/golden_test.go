package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden scenario digests")

const (
	scenariosDir = "../../scenarios"
	digestFile   = "testdata/scenario_digests.json"

	// goldenMaxConsumers keeps the golden suite fast: bigger scenarios
	// (the 10^6-consumer ones) are benchmark-only.
	goldenMaxConsumers = 200000

	// goldenSeed is the suite's fixed runner seed; scenario files that
	// pin their own seed override it, which every committed one does.
	goldenSeed = 42
)

// loadLibrary parses every committed scenario and splits it into golden
// and benchmark-only sets.
func loadLibrary(t *testing.T) (golden, large []*Scenario) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenarios under %s", scenariosDir)
	}
	sort.Strings(paths)
	seen := map[string]string{}
	for _, path := range paths {
		sc, err := ParseFile(path)
		if err != nil {
			t.Fatalf("library scenario rejected: %v", err)
		}
		if prev, dup := seen[sc.Name]; dup {
			t.Fatalf("duplicate scenario name %q in %s and %s", sc.Name, prev, path)
		}
		seen[sc.Name] = path
		if sc.Population.Consumers.N > goldenMaxConsumers {
			large = append(large, sc)
		} else {
			golden = append(golden, sc)
		}
	}
	return golden, large
}

// TestScenarioLibraryShape pins the library floor the issue demands: at
// least 10 named golden scenarios plus the benchmark-scale one, every
// one self-seeded so digests do not depend on runner flags.
func TestScenarioLibraryShape(t *testing.T) {
	golden, large := loadLibrary(t)
	if len(golden) < 10 {
		t.Fatalf("only %d golden scenarios committed, want ≥ 10", len(golden))
	}
	if len(large) < 1 {
		t.Fatal("no benchmark-scale (>200k consumer) scenario committed")
	}
	for _, sc := range append(golden, large...) {
		if sc.Seed == 0 {
			t.Errorf("scenario %s does not pin a seed", sc.Name)
		}
		if sc.Description == "" {
			t.Errorf("scenario %s has no description", sc.Name)
		}
	}
}

// TestScenarioGoldenDigests is the regression library: every golden
// scenario's canonical report must hash to its committed digest, run
// sequentially and at -parallel 4. Regenerate with
// `go test ./internal/scenario -run TestScenarioGoldenDigests -update`.
func TestScenarioGoldenDigests(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("full golden suite is sized for the plain test run; see TestScenarioGoldenSmall")
	}
	golden, _ := loadLibrary(t)

	got := map[string]string{}
	for _, sc := range golden {
		seq := runScenario(t, sc, goldenSeed, 1)
		// Run consumes the engine, so the parallel replay rebuilds it;
		// byte-equality here is the per-scenario determinism gate.
		par := runScenario(t, cloneScenario(t, sc), goldenSeed, 4)
		if seq.Text != par.Text {
			t.Fatalf("scenario %s: sequential and -parallel 4 reports differ:\n--- seq\n%s\n--- par\n%s",
				sc.Name, seq.Text, par.Text)
		}
		got[sc.Name] = seq.Digest()
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), digestFile)
		return
	}

	data, err := os.ReadFile(digestFile)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, digest := range got {
		if want[name] == "" {
			t.Errorf("scenario %s has no committed digest (run with -update)", name)
		} else if digest != want[name] {
			t.Errorf("scenario %s digest drifted:\n  committed %s\n  got       %s\n(an intended engine change needs -update and a changelog note)",
				name, want[name], digest)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("committed digest for %s but no such scenario in %s", name, scenariosDir)
		}
	}
}

// TestScenarioGoldenSmall keeps a digest check alive under -race and
// -short: the two lightest scenarios, sequential vs parallel.
func TestScenarioGoldenSmall(t *testing.T) {
	golden, _ := loadLibrary(t)
	sort.Slice(golden, func(i, j int) bool {
		return golden[i].Population.Consumers.N*golden[i].Rounds < golden[j].Population.Consumers.N*golden[j].Rounds
	})
	if len(golden) > 2 {
		golden = golden[:2]
	}
	for _, sc := range golden {
		seq := runScenario(t, sc, goldenSeed, 1)
		par := runScenario(t, cloneScenario(t, sc), goldenSeed, 4)
		if seq.Text != par.Text {
			t.Fatalf("scenario %s: sequential and -parallel 4 reports differ", sc.Name)
		}
	}
}

// cloneScenario reparses the scenario from its rendered JSON so repeated
// runs never share normalized state.
func cloneScenario(t *testing.T, sc *Scenario) *Scenario {
	t.Helper()
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := Parse(data)
	if err != nil {
		t.Fatalf("clone of %s failed to reparse: %v", sc.Name, err)
	}
	return clone
}
