package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Parse decodes, defaults and validates one scenario document. Decoding
// is strict: unknown fields, malformed JSON and trailing data are errors,
// and validation failures name the offending field (FieldError). Parse
// never panics on any input — enforced by FuzzScenarioParse.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", niceDecodeErr(err))
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the document")
	}
	if err := sc.Normalize(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// niceDecodeErr rewrites encoding/json's unknown-field error into the
// field-naming style the rest of validation uses.
func niceDecodeErr(err error) error {
	msg := err.Error()
	if rest, ok := strings.CutPrefix(msg, `json: unknown field `); ok {
		return fmt.Errorf("unknown field %s (schema version %d fields only)", rest, CurrentVersion)
	}
	return err
}

// ParseFile reads and parses a scenario file.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
