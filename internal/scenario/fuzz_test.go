package scenario

import (
	"errors"
	"strings"
	"testing"
)

// FuzzScenarioParse is the parser's robustness contract: Parse never
// panics on any byte string, and every validation rejection is a
// FieldError naming the offending field. Wired into `make fuzz-smoke`.
func FuzzScenarioParse(f *testing.F) {
	f.Add([]byte(minimalDoc()))
	f.Add([]byte(`{"version":1,"name":"x","population":{"services":{"n":10,"exaggerateFrac":0.3},"consumers":{"n":50,"regions":4}},` +
		`"mechanism":{"kind":"decay","halfLife":6},"attacks":[{"kind":"collusion","fraction":0.2,"alliedServices":0.1}],` +
		`"faults":{"drop":0.1,"outages":[{"from":2,"to":4}]},"resilience":{"profile":"naive"},` +
		`"traffic":{"shape":"diurnal","rate":0.5,"amplitude":0.5,"period":12,"flash":{"round":3,"width":2,"multiplier":5},` +
		`"churn":{"leave":0.1,"rejoin":0.5},"partitions":[{"region":1,"from":5,"to":7}]}}`))
	f.Add([]byte(`{"version":1,"name":"w","population":{"services":{"n":2},"consumers":{"n":1}},` +
		`"attacks":[{"kind":"whitewash","fraction":1,"inner":"ballot-stuff","period":2}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1e9}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"rounds":-3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data) // must not panic, whatever the input
		if err == nil {
			// Accepted documents are normalized and safe to re-validate.
			if sc.Rounds < 1 || sc.Population.Services.N < 2 || sc.Population.Consumers.N < 1 {
				t.Fatalf("Parse accepted an un-normalized document: %+v", sc)
			}
			if err := sc.Normalize(); err != nil {
				t.Fatalf("re-Normalize of accepted document failed: %v", err)
			}
			return
		}
		if err.Error() == "" {
			t.Fatal("empty error message")
		}
		var fe *FieldError
		if errors.As(err, &fe) {
			if fe.Field == "" || fe.Msg == "" {
				t.Fatalf("FieldError missing field or message: %#v", fe)
			}
			if !strings.Contains(err.Error(), fe.Field) {
				t.Fatalf("message %q does not name field %q", err.Error(), fe.Field)
			}
		}
	})
}
