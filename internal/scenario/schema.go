// Package scenario makes workloads data: a versioned, strictly validated
// JSON format composing population mixes, attack cocktails, fault
// profiles, resilience configs and traffic shapes — the scenario space
// the survey's mechanism comparison only means something under — plus the
// struct-of-arrays simulation engine that runs those scenarios at up to
// 10^6 consumers in deterministic parallel epochs (see engine.go and
// DESIGN.md §9).
//
// A scenario file names one complete marketplace workload. The schema is
// versioned (CurrentVersion); unknown fields, out-of-range knobs and
// conflicting shapes are rejected at parse time with errors that name the
// offending field, so the committed library under scenarios/ doubles as a
// format reference. wsxsim consumes files with `wsxsim -scenario <file>`.
package scenario

import (
	"fmt"
	"math"
	"strings"

	"wstrust/internal/fault"
)

// CurrentVersion is the schema version this build reads and writes.
const CurrentVersion = 1

// Scenario is the root document of one workload definition.
type Scenario struct {
	// Version is the schema version; must equal CurrentVersion.
	Version int `json:"version"`
	// Name identifies the scenario in reports and golden digests.
	Name string `json:"name"`
	// Description says what the scenario stresses.
	Description string `json:"description,omitempty"`
	// Seed pins the simulation seed; 0 defers to the runner (-seed).
	Seed int64 `json:"seed,omitempty"`
	// Rounds is the number of simulated selection rounds (default 24).
	Rounds int `json:"rounds,omitempty"`

	Population Population  `json:"population"`
	Mechanism  Mechanism   `json:"mechanism,omitempty"`
	Selection  Selection   `json:"selection,omitempty"`
	Attacks    []Attack    `json:"attacks,omitempty"`
	Faults     *Faults     `json:"faults,omitempty"`
	Resilience *Resilience `json:"resilience,omitempty"`
	Traffic    Traffic     `json:"traffic,omitempty"`
}

// Population composes the service and consumer mixes.
type Population struct {
	Services  Services  `json:"services"`
	Consumers Consumers `json:"consumers"`
}

// Services configures the tiered service population
// (workload.GenerateServiceSlab).
type Services struct {
	// N is the number of services (required, ≥ 2).
	N int `json:"n"`
	// GoodFrac and BadFrac partition the tiers (defaults 0.3/0.3).
	GoodFrac float64 `json:"goodFrac,omitempty"`
	BadFrac  float64 `json:"badFrac,omitempty"`
	// ExaggerateFrac of services advertise better than truth; the
	// exaggerators are also the ally pool collusion-style attacks pump.
	ExaggerateFrac float64 `json:"exaggerateFrac,omitempty"`
	// Exaggeration strength (default 0.5).
	Exaggeration float64 `json:"exaggeration,omitempty"`
	// Jitter is per-invocation observation noise (default 0.08).
	Jitter float64 `json:"jitter,omitempty"`
}

// Consumers configures the consumer population
// (workload.GenerateConsumerSlab).
type Consumers struct {
	// N is the number of consumers (required, ≥ 1).
	N int `json:"n"`
	// Heterogeneity in [0,1] blends shared vs individual preferences.
	Heterogeneity float64 `json:"heterogeneity,omitempty"`
	// Regions partitions consumers round-robin into geographic regions
	// (default 1); diurnal phase and partitions key off the region.
	Regions int `json:"regions,omitempty"`
}

// Mechanism selects how the registry aggregates feedback into reputation.
type Mechanism struct {
	// Kind: "advertised" (no reputation — the exploitable baseline),
	// "mean" (running mean), "beta" (Laplace-smoothed mean, default), or
	// "decay" (beta with per-round exponential forgetting).
	Kind string `json:"kind,omitempty"`
	// HalfLife is the forgetting half-life in rounds for kind "decay"
	// (default 12).
	HalfLife int `json:"halfLife,omitempty"`
	// NewcomerWeight in (0,1] discounts ratings from raters with fewer
	// than NewcomerReports accepted reports (default 1 = no discount).
	// This is the knob whitewashing attacks probe.
	NewcomerWeight float64 `json:"newcomerWeight,omitempty"`
	// NewcomerReports is the accepted-report count below which the
	// newcomer discount applies.
	NewcomerReports int `json:"newcomerReports,omitempty"`
}

// Selection tunes the consumer-side selection policy.
type Selection struct {
	// Explore is the ε-greedy exploration probability (default 0.05).
	Explore float64 `json:"explore,omitempty"`
	// Candidates is the per-selection candidate sample size when the
	// population exceeds it (default 16).
	Candidates int `json:"candidates,omitempty"`
	// ReputationWeight ρ blends reputation against advertised utility:
	// score = (1-ρ)·advertised + ρ·reputation (default 0.7).
	ReputationWeight float64 `json:"reputationWeight,omitempty"`
}

// Attack is one component of the attack cocktail. Fractions are assigned
// to consumer-index prefixes in list order (the attack.Assign
// discipline), so cocktails are deterministic by construction.
type Attack struct {
	// Kind: badmouth, ballot-stuff, collusion, complementary, random, or
	// whitewash (see internal/attack for the behaviours).
	Kind string `json:"kind"`
	// Fraction of the consumer population running this attack.
	Fraction float64 `json:"fraction"`
	// AlliedServices is the fraction of services the ballot-stuff or
	// collusion clique pumps, drawn from the exaggerator end of the
	// population (default 0.05).
	AlliedServices float64 `json:"alliedServices,omitempty"`
	// Inner is the lying behaviour a whitewasher wraps (default
	// "complementary").
	Inner string `json:"inner,omitempty"`
	// Period is the whitewasher's reports-per-identity before it resets
	// (default 5).
	Period int `json:"period,omitempty"`
}

// Faults selects the fault regime: either a named preset from
// internal/fault (lossy, lossy30, churny, outage, chaos) or explicit
// knobs, not both. The scenario engine honours the feedback-path subset —
// drop rate and registry outage windows.
type Faults struct {
	// Profile names a fault preset.
	Profile string `json:"profile,omitempty"`
	// Drop is the per-submit probability that feedback is lost.
	Drop float64 `json:"drop,omitempty"`
	// Outages are registry outage windows in rounds [from,to).
	Outages []Window `json:"outages,omitempty"`
}

// Window is a half-open round interval [From,To).
type Window struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Resilience selects how consumers degrade when the registry is
// unreachable (outages, partitions): "breaker" serves selections from the
// reputation snapshot cached at the window start (stale but informed);
// "naive" falls back to advertised-only ranking — discovery failed and
// nothing was cached.
type Resilience struct {
	Profile string `json:"profile"`
}

// Traffic composes the request shape: a base shape (uniform or a diurnal
// cycle) plus optional flash-crowd, marketplace-churn and
// regional-partition overlays.
type Traffic struct {
	// Shape: "uniform" (default) or "diurnal".
	Shape string `json:"shape,omitempty"`
	// Rate is the base per-consumer per-round activity probability
	// (default 1).
	Rate float64 `json:"rate,omitempty"`
	// Amplitude of the diurnal cycle in [0,1] (default 0.5; diurnal
	// only). Validation requires rate·(1+amplitude) ≤ 1 so the cycle
	// never clips and total volume is conserved across a period.
	Amplitude float64 `json:"amplitude,omitempty"`
	// Period of the diurnal cycle in rounds (default 24; diurnal only).
	Period int `json:"period,omitempty"`
	// Flash is an optional flash-crowd overlay.
	Flash *Flash `json:"flash,omitempty"`
	// Churn is optional marketplace churn of the consumer population.
	Churn *Churn `json:"churn,omitempty"`
	// Partitions are regional registry partitions.
	Partitions []Partition `json:"partitions,omitempty"`
}

// Flash is a flash crowd: activity multiplied by Multiplier (capped at
// probability 1) during rounds [Round, Round+Width).
type Flash struct {
	Round      int     `json:"round"`
	Width      int     `json:"width"`
	Multiplier float64 `json:"multiplier"`
}

// Churn is marketplace churn: each round every present consumer leaves
// with probability Leave and every departed consumer returns with
// probability Rejoin.
type Churn struct {
	Leave  float64 `json:"leave"`
	Rejoin float64 `json:"rejoin"`
}

// Partition cuts one region off the registry for rounds [From,To):
// feedback from the region is lost and its consumers see no reputation
// updates (what they see instead depends on the resilience profile).
type Partition struct {
	Region int `json:"region"`
	From   int `json:"from"`
	To     int `json:"to"`
}

// FieldError is a validation failure naming the offending field.
type FieldError struct {
	Field string
	Msg   string
}

// Error implements error.
func (e *FieldError) Error() string { return "scenario: " + e.Field + ": " + e.Msg }

func errf(field, format string, args ...any) error {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// AttackKinds lists the accepted attack kinds.
var AttackKinds = []string{"badmouth", "ballot-stuff", "collusion", "complementary", "random", "whitewash"}

// MechanismKinds lists the accepted mechanism kinds.
var MechanismKinds = []string{"advertised", "mean", "beta", "decay"}

func isOneOf(s string, set []string) bool {
	for _, v := range set {
		if s == v {
			return true
		}
	}
	return false
}

// Normalize applies defaults and validates; it is called by Parse and
// must be called before handing a hand-built Scenario to the engine.
func (s *Scenario) Normalize() error {
	if s.Version != CurrentVersion {
		return errf("version", "unsupported schema version %d (this build supports %d)", s.Version, CurrentVersion)
	}
	if strings.TrimSpace(s.Name) == "" {
		return errf("name", "required")
	}
	if s.Rounds == 0 {
		s.Rounds = 24
	}
	if s.Rounds < 1 || s.Rounds > 100000 {
		return errf("rounds", "%d out of range [1,100000]", s.Rounds)
	}
	if s.Seed < 0 {
		return errf("seed", "%d must be ≥ 0", s.Seed)
	}
	if err := s.Population.normalize(); err != nil {
		return err
	}
	if err := s.Mechanism.normalize(); err != nil {
		return err
	}
	if err := s.Selection.normalize(); err != nil {
		return err
	}
	var attackTotal float64
	for i := range s.Attacks {
		if err := s.Attacks[i].normalize(i); err != nil {
			return err
		}
		attackTotal += s.Attacks[i].Fraction
	}
	if attackTotal > 1 {
		return errf("attacks", "fractions sum to %.3f, exceeding 1", attackTotal)
	}
	if s.Faults != nil {
		if err := s.Faults.normalize(s.Rounds); err != nil {
			return err
		}
	}
	if s.Resilience != nil {
		switch s.Resilience.Profile {
		case "breaker", "naive":
		default:
			return errf("resilience.profile", "unknown profile %q (want breaker or naive)", s.Resilience.Profile)
		}
	}
	return s.Traffic.normalize(s.Rounds, s.Population.Consumers.Regions)
}

func (p *Population) normalize() error {
	sv := &p.Services
	if sv.N < 2 {
		return errf("population.services.n", "%d must be ≥ 2", sv.N)
	}
	if sv.N > 100000 {
		return errf("population.services.n", "%d exceeds the 100000 ceiling", sv.N)
	}
	if sv.GoodFrac == 0 && sv.BadFrac == 0 {
		sv.GoodFrac, sv.BadFrac = 0.3, 0.3
	}
	for field, v := range map[string]float64{
		"population.services.goodFrac":       sv.GoodFrac,
		"population.services.badFrac":        sv.BadFrac,
		"population.services.exaggerateFrac": sv.ExaggerateFrac,
	} {
		if v < 0 || v > 1 {
			return errf(field, "%g out of range [0,1]", v)
		}
	}
	if sv.GoodFrac+sv.BadFrac > 1 {
		return errf("population.services.badFrac", "goodFrac+badFrac = %g exceeds 1", sv.GoodFrac+sv.BadFrac)
	}
	if sv.Exaggeration == 0 {
		sv.Exaggeration = 0.5
	}
	if sv.Exaggeration < 0 || sv.Exaggeration > 4 {
		return errf("population.services.exaggeration", "%g out of range (0,4]", sv.Exaggeration)
	}
	if sv.Jitter == 0 {
		sv.Jitter = 0.08
	}
	if sv.Jitter < 0 || sv.Jitter > 0.5 {
		return errf("population.services.jitter", "%g out of range [0,0.5]", sv.Jitter)
	}
	co := &p.Consumers
	if co.N < 1 {
		return errf("population.consumers.n", "%d must be ≥ 1", co.N)
	}
	if co.N > 10_000_000 {
		return errf("population.consumers.n", "%d exceeds the 10000000 ceiling", co.N)
	}
	if co.Heterogeneity < 0 || co.Heterogeneity > 1 {
		return errf("population.consumers.heterogeneity", "%g out of range [0,1]", co.Heterogeneity)
	}
	if co.Regions == 0 {
		co.Regions = 1
	}
	if co.Regions < 1 || co.Regions > 64 {
		return errf("population.consumers.regions", "%d out of range [1,64]", co.Regions)
	}
	return nil
}

func (m *Mechanism) normalize() error {
	if m.Kind == "" {
		m.Kind = "beta"
	}
	if !isOneOf(m.Kind, MechanismKinds) {
		return errf("mechanism.kind", "unknown kind %q (want one of %s)", m.Kind, strings.Join(MechanismKinds, ", "))
	}
	if m.HalfLife != 0 && m.Kind != "decay" {
		return errf("mechanism.halfLife", "only valid with kind \"decay\"")
	}
	if m.Kind == "decay" {
		if m.HalfLife == 0 {
			m.HalfLife = 12
		}
		if m.HalfLife < 1 || m.HalfLife > 10000 {
			return errf("mechanism.halfLife", "%d out of range [1,10000]", m.HalfLife)
		}
	}
	if m.NewcomerWeight == 0 {
		m.NewcomerWeight = 1
	}
	if m.NewcomerWeight <= 0 || m.NewcomerWeight > 1 {
		return errf("mechanism.newcomerWeight", "%g out of range (0,1]", m.NewcomerWeight)
	}
	if m.NewcomerReports < 0 || m.NewcomerReports > 1000 {
		return errf("mechanism.newcomerReports", "%d out of range [0,1000]", m.NewcomerReports)
	}
	if m.NewcomerReports > 0 && m.NewcomerWeight == 1 {
		return errf("mechanism.newcomerReports", "set but newcomerWeight is 1 (the discount would be a no-op)")
	}
	return nil
}

func (s *Selection) normalize() error {
	if s.Explore == 0 {
		s.Explore = 0.05
	}
	if s.Explore < 0 || s.Explore > 1 {
		return errf("selection.explore", "%g out of range [0,1]", s.Explore)
	}
	if s.Candidates == 0 {
		s.Candidates = 16
	}
	if s.Candidates < 2 || s.Candidates > 1024 {
		return errf("selection.candidates", "%d out of range [2,1024]", s.Candidates)
	}
	if s.ReputationWeight == 0 {
		s.ReputationWeight = 0.7
	}
	if s.ReputationWeight < 0 || s.ReputationWeight > 1 {
		return errf("selection.reputationWeight", "%g out of range [0,1]", s.ReputationWeight)
	}
	return nil
}

func (a *Attack) normalize(i int) error {
	field := func(name string) string { return fmt.Sprintf("attacks[%d].%s", i, name) }
	if !isOneOf(a.Kind, AttackKinds) {
		return errf(field("kind"), "unknown kind %q (want one of %s)", a.Kind, strings.Join(AttackKinds, ", "))
	}
	if a.Fraction <= 0 || a.Fraction > 1 {
		return errf(field("fraction"), "%g out of range (0,1]", a.Fraction)
	}
	needsAllies := a.Kind == "ballot-stuff" || a.Kind == "collusion"
	if a.AlliedServices != 0 && !needsAllies {
		return errf(field("alliedServices"), "only valid for ballot-stuff and collusion")
	}
	if needsAllies {
		if a.AlliedServices == 0 {
			a.AlliedServices = 0.05
		}
		if a.AlliedServices < 0 || a.AlliedServices > 1 {
			return errf(field("alliedServices"), "%g out of range (0,1]", a.AlliedServices)
		}
	}
	if a.Kind == "whitewash" {
		if a.Inner == "" {
			a.Inner = "complementary"
		}
		if a.Inner == "whitewash" || !isOneOf(a.Inner, AttackKinds) {
			return errf(field("inner"), "invalid inner kind %q", a.Inner)
		}
		if a.Period == 0 {
			a.Period = 5
		}
		if a.Period < 1 || a.Period > 10000 {
			return errf(field("period"), "%d out of range [1,10000]", a.Period)
		}
	} else {
		if a.Inner != "" {
			return errf(field("inner"), "only valid for whitewash")
		}
		if a.Period != 0 {
			return errf(field("period"), "only valid for whitewash")
		}
	}
	return nil
}

func (f *Faults) normalize(rounds int) error {
	if f.Profile != "" {
		if f.Drop != 0 || len(f.Outages) > 0 {
			return errf("faults.profile", "conflicts with explicit drop/outages fields")
		}
		p, err := fault.ParseProfile(f.Profile)
		if err != nil || p.Name == "custom" || !p.Enabled() {
			return errf("faults.profile", "unknown fault preset %q", f.Profile)
		}
		f.Drop = p.DropRate
		for _, w := range p.Outages {
			f.Outages = append(f.Outages, Window{From: w.From, To: w.To})
		}
	}
	if f.Drop < 0 || f.Drop >= 1 {
		return errf("faults.drop", "%g out of range [0,1)", f.Drop)
	}
	for i, w := range f.Outages {
		if w.From < 0 || w.To <= w.From || w.From >= rounds {
			return errf(fmt.Sprintf("faults.outages[%d]", i), "window [%d,%d) invalid for a %d-round run", w.From, w.To, rounds)
		}
	}
	return nil
}

func (t *Traffic) normalize(rounds, regions int) error {
	if t.Shape == "" {
		t.Shape = "uniform"
	}
	if t.Rate == 0 {
		t.Rate = 1
	}
	if t.Rate < 0 || t.Rate > 1 {
		return errf("traffic.rate", "%g out of range (0,1]", t.Rate)
	}
	switch t.Shape {
	case "uniform":
		if t.Amplitude != 0 {
			return errf("traffic.amplitude", "only valid with shape \"diurnal\"")
		}
		if t.Period != 0 {
			return errf("traffic.period", "only valid with shape \"diurnal\"")
		}
	case "diurnal":
		if t.Amplitude == 0 {
			t.Amplitude = 0.5
		}
		if t.Amplitude < 0 || t.Amplitude > 1 {
			return errf("traffic.amplitude", "%g out of range (0,1]", t.Amplitude)
		}
		if t.Period == 0 {
			t.Period = 24
		}
		if t.Period < 2 || t.Period > 100000 {
			return errf("traffic.period", "%d out of range [2,100000]", t.Period)
		}
		if peak := t.Rate * (1 + t.Amplitude); peak > 1+1e-12 {
			return errf("traffic.rate", "rate×(1+amplitude) = %g exceeds 1 — the diurnal peak would clip and volume would not be conserved", peak)
		}
	default:
		return errf("traffic.shape", "unknown shape %q (want uniform or diurnal)", t.Shape)
	}
	if fl := t.Flash; fl != nil {
		if fl.Round < 0 || fl.Round >= rounds {
			return errf("traffic.flash.round", "%d outside the %d-round run", fl.Round, rounds)
		}
		if fl.Width < 1 || fl.Round+fl.Width > rounds {
			return errf("traffic.flash.width", "window [%d,%d) outside the %d-round run", fl.Round, fl.Round+fl.Width, rounds)
		}
		if fl.Multiplier < 1 || fl.Multiplier > 1000 {
			return errf("traffic.flash.multiplier", "%g out of range [1,1000]", fl.Multiplier)
		}
	}
	if ch := t.Churn; ch != nil {
		if ch.Leave <= 0 || ch.Leave >= 1 {
			return errf("traffic.churn.leave", "%g out of range (0,1)", ch.Leave)
		}
		if ch.Rejoin <= 0 || ch.Rejoin > 1 {
			return errf("traffic.churn.rejoin", "%g out of range (0,1]", ch.Rejoin)
		}
	}
	for i, p := range t.Partitions {
		field := func(name string) string { return fmt.Sprintf("traffic.partitions[%d].%s", i, name) }
		if p.Region < 0 || p.Region >= regions {
			return errf(field("region"), "%d outside the %d configured regions", p.Region, regions)
		}
		if p.From < 0 || p.To <= p.From || p.From >= rounds {
			return errf(field("from"), "window [%d,%d) invalid for a %d-round run", p.From, p.To, rounds)
		}
	}
	return nil
}

// RateAt returns the activity probability for one round and region before
// flash scaling: the base rate, diurnally modulated when shape is
// diurnal. Regions are phase-shifted across the period so global volume
// spreads — the sum over a full period is rate·period for every region
// (volume conservation; see the property tests).
func (t Traffic) RateAt(round, region, regions int) float64 {
	r := t.Rate
	if t.Shape == "diurnal" {
		phase := float64(region) / float64(regions)
		r *= 1 + t.Amplitude*math.Sin(2*math.Pi*(float64(round)/float64(t.Period)+phase))
	}
	if fl := t.Flash; fl != nil && round >= fl.Round && round < fl.Round+fl.Width {
		r *= fl.Multiplier
	}
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// ExpectedVolume sums RateAt over every round and consumer — the expected
// request count before churn and ε noise, used by the conservation
// property tests.
func (t Traffic) ExpectedVolume(rounds, consumers, regions int) float64 {
	var total float64
	for round := 0; round < rounds; round++ {
		for region := 0; region < regions; region++ {
			n := consumers / regions
			if region < consumers%regions {
				n++
			}
			total += float64(n) * t.RateAt(round, region, regions)
		}
	}
	return total
}
