package scenario

import (
	"math"
	"testing"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/workload"
)

// The SoA-vs-map differential replay (satellite 2): refRun re-implements
// the scenario engine the way the classic suite is built — legacy
// map-based generators, qos.Vector maps per service, preference maps per
// consumer, map-keyed registry state — sharing only the RNG streams and
// the arithmetic discipline. Byte-identical reports from both pin down
// that the slab refactor changed the representation and nothing else.

type refState struct {
	sc   *Scenario
	seed int64
	ids  []core.ServiceID

	adv, truth map[core.ServiceID]qos.Vector // normalized
	avail      map[core.ServiceID]float64
	tier       map[core.ServiceID]workload.Tier
	baseTrueU  map[core.ServiceID]float64

	prefs    map[int]qos.Preferences // normalized, per consumer
	ratePref map[int]qos.Preferences // non-availability renormalized
	bestTrue map[int]float64
	alive    map[int]bool
	reports  map[int]int

	sumQ, cntQ map[core.ServiceID]int64
}

func newRefState(sc *Scenario, seed int64) *refState {
	if err := sc.Normalize(); err != nil {
		panic(err)
	}
	if sc.Seed != 0 {
		seed = sc.Seed
	}
	sv := sc.Population.Services
	specs := workload.GenerateServices(simclock.Stream(seed, "scenario.services"), workload.ServiceOptions{
		N: sv.N, GoodFrac: sv.GoodFrac, BadFrac: sv.BadFrac,
		ExaggerateFrac: sv.ExaggerateFrac, Exaggeration: sv.Exaggeration, Jitter: sv.Jitter,
	})
	cons := workload.GenerateConsumers(simclock.Stream(seed, "scenario.consumers"),
		sc.Population.Consumers.N, sc.Population.Consumers.Heterogeneity)

	r := &refState{
		sc: sc, seed: seed,
		adv:   map[core.ServiceID]qos.Vector{},
		truth: map[core.ServiceID]qos.Vector{},
		avail: map[core.ServiceID]float64{}, tier: map[core.ServiceID]workload.Tier{},
		baseTrueU: map[core.ServiceID]float64{},
		prefs:     map[int]qos.Preferences{}, ratePref: map[int]qos.Preferences{},
		bestTrue: map[int]float64{}, alive: map[int]bool{}, reports: map[int]int{},
		sumQ: map[core.ServiceID]int64{}, cntQ: map[core.ServiceID]int64{},
	}
	scale := workload.GradeScale()
	for _, spec := range specs {
		id := spec.Desc.Service
		r.ids = append(r.ids, id)
		r.adv[id] = scale.NormalizeVector(projectPrefs(spec.Desc.Advertised))
		r.truth[id] = scale.NormalizeVector(projectPrefs(spec.Behavior.True))
		r.avail[id] = spec.Behavior.True[qos.Availability]
		r.tier[id] = spec.Tier
		var baseSum float64
		for _, m := range workload.PrefMetrics {
			baseSum += r.truth[id][m]
		}
		r.baseTrueU[id] = baseSum / 4 * r.avail[id]
	}
	for c, spec := range cons {
		var sum, rsum float64
		for _, m := range workload.PrefMetrics {
			w := spec.Prefs[m]
			sum += w
			if m != qos.Availability {
				rsum += w
			}
		}
		p, rp := qos.Preferences{}, qos.Preferences{}
		for _, m := range workload.PrefMetrics {
			w := spec.Prefs[m]
			if sum > 0 {
				p[m] = w / sum
			} else {
				p[m] = 0.25
			}
			if m == qos.Availability {
				continue
			}
			if rsum > 0 {
				rp[m] = w / rsum
			} else {
				rp[m] = 1.0 / 3
			}
		}
		r.prefs[c], r.ratePref[c] = p, rp
		r.alive[c] = true
		best := 0.0
		for _, id := range r.ids {
			if u := r.trueU(c, id); u > best {
				best = u
			}
		}
		r.bestTrue[c] = best
	}
	return r
}

// projectPrefs drops metric columns outside the preference profile
// (throughput), mirroring the slab's 4-column preference axis.
func projectPrefs(v qos.Vector) qos.Vector {
	out := qos.Vector{}
	for _, m := range workload.PrefMetrics {
		out[m] = v[m]
	}
	return out
}

func (r *refState) score(c int, id core.ServiceID, rep map[core.ServiceID]float64, rho float64) float64 {
	var adv float64
	for _, m := range workload.PrefMetrics {
		adv += r.prefs[c][m] * r.adv[id][m]
	}
	return (1-rho)*adv + rho*rep[id]
}

func (r *refState) trueU(c int, id core.ServiceID) float64 {
	var u float64
	for _, m := range workload.PrefMetrics {
		u += r.prefs[c][m] * r.truth[id][m]
	}
	return u * r.avail[id]
}

func (r *refState) computeRep() map[core.ServiceID]float64 {
	rep := make(map[core.ServiceID]float64, len(r.ids))
	for _, id := range r.ids {
		switch r.sc.Mechanism.Kind {
		case "advertised":
			rep[id] = 0.5
		case "mean":
			if r.cntQ[id] == 0 {
				rep[id] = 0.5
			} else {
				rep[id] = float64(r.sumQ[id]) / float64(r.cntQ[id])
			}
		default:
			rep[id] = float64(r.sumQ[id]+qScale) / float64(r.cntQ[id]+2*qScale)
		}
	}
	return rep
}

func (r *refState) attackOf(c int) (behav string, period int, allyFrom int) {
	nS, nC := len(r.ids), len(r.prefs)
	start := 0
	for _, a := range r.sc.Attacks {
		end := start + int(math.Ceil(a.Fraction*float64(nC)))
		if end > nC {
			end = nC
		}
		if c < end {
			kind := a.Kind
			if kind == "whitewash" {
				kind = a.Inner
				period = a.Period
			}
			allyFrom = nS
			if kind == "ballot-stuff" || kind == "collusion" {
				nAllies := int(math.Ceil(a.AlliedServices * float64(nS)))
				if nAllies > nS {
					nAllies = nS
				}
				allyFrom = nS - nAllies
			}
			return kind, period, allyFrom
		}
		start = end
	}
	return "", 0, nS
}

// run replays the scenario sequentially over the map representation.
func (r *refState) run() *Report {
	sc := r.sc
	nS, nC := len(r.ids), len(r.prefs)
	regions := sc.Population.Consumers.Regions
	jitter := sc.Population.Services.Jitter
	rho := sc.Selection.ReputationWeight
	if sc.Mechanism.Kind == "advertised" {
		rho = 0
	}
	var drop float64
	var outages []Window
	if sc.Faults != nil {
		drop, outages = sc.Faults.Drop, sc.Faults.Outages
	}
	staleServe := sc.Resilience == nil || sc.Resilience.Profile == "breaker"
	var decayNum int64
	if sc.Mechanism.Kind == "decay" {
		decayNum = int64(math.Pow(2, -1/float64(sc.Mechanism.HalfLife))*65536 + 0.5)
	}
	newcomerWQ := int64(sc.Mechanism.NewcomerWeight*qScale + 0.5)
	newcomerK := sc.Mechanism.NewcomerReports

	frozenOut := make([]map[core.ServiceID]float64, len(outages))
	frozenPart := make([]map[core.ServiceID]float64, len(sc.Traffic.Partitions))

	var rows []RoundStats
	var totReq, totOK, totLost, totRegretQ int64
	var totGood int64
	for round := 0; round < sc.Rounds; round++ {
		rep := r.computeRep()
		for i, w := range outages {
			if round == w.From {
				frozenOut[i] = rep
			}
		}
		for i, p := range sc.Traffic.Partitions {
			if round == p.From {
				frozenPart[i] = rep
			}
		}
		outIdx := -1
		for i, w := range outages {
			if round >= w.From && round < w.To {
				outIdx = i
				break
			}
		}
		var row RoundStats
		row.Round = round
		for c := 0; c < nC; c++ {
			if ch := sc.Traffic.Churn; ch != nil {
				rng := streamFor(r.seed, round, c, purposeChurn)
				u := rng.float64()
				if r.alive[c] {
					if u < ch.Leave {
						r.alive[c] = false
					}
				} else if u < ch.Rejoin {
					r.alive[c] = true
				}
			}
			if !r.alive[c] {
				continue
			}
			region := c % regions
			rate := sc.Traffic.RateAt(round, region, regions)
			if rate <= 0 {
				continue
			}
			if rate < 1 {
				rng := streamFor(r.seed, round, c, purposeActivity)
				if rng.float64() >= rate {
					continue
				}
			}

			// Resolve this region's reputation view.
			view, viewRho, blocked := rep, rho, false
			var frozen map[core.ServiceID]float64
			if outIdx >= 0 {
				blocked, frozen = true, frozenOut[outIdx]
			} else {
				for i, p := range sc.Traffic.Partitions {
					if p.Region == region && round >= p.From && round < p.To {
						blocked, frozen = true, frozenPart[i]
						break
					}
				}
			}
			if blocked {
				if staleServe && frozen != nil {
					view = frozen
				} else {
					viewRho = 0
				}
			}

			rng := streamFor(r.seed, round, c, purposeAction)
			row.Requests++
			var chosen core.ServiceID
			chosenIdx := 0
			if rng.float64() < sc.Selection.Explore {
				chosenIdx = rng.intn(nS)
				chosen = r.ids[chosenIdx]
			} else {
				best := math.Inf(-1)
				if nS <= sc.Selection.Candidates {
					for i, id := range r.ids {
						if s := r.score(c, id, view, viewRho); s > best {
							best, chosen, chosenIdx = s, id, i
						}
					}
				} else {
					for j := 0; j < sc.Selection.Candidates; j++ {
						i := rng.intn(nS)
						if s := r.score(c, r.ids[i], view, viewRho); s > best {
							best, chosen, chosenIdx = s, r.ids[i], i
						}
					}
				}
			}
			regret := r.bestTrue[c] - r.trueU(c, chosen)
			if regret < 0 {
				regret = 0
			}
			row.regretQ += int64(regret*qScale + 0.5)
			row.tierCount[r.tier[chosen]]++

			rating := 0.0
			if rng.float64() < r.avail[chosen] {
				row.OK++
				for _, m := range workload.PrefMetrics {
					if m == qos.Availability {
						continue
					}
					v := r.truth[chosen][m] + jitter*(2*rng.float64()-1)
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					rating += r.ratePref[c][m] * v
				}
			}

			behav, period, allyFrom := r.attackOf(c)
			switch behav {
			case "badmouth":
				rating = 0.02
			case "ballot-stuff":
				if chosenIdx >= allyFrom {
					rating = 0.98
				}
			case "collusion":
				if chosenIdx >= allyFrom {
					rating = 0.98
				} else {
					rating = 0.02
				}
			case "complementary":
				rating = 1 - rating
			case "random":
				rating = rng.float64()
			}

			if blocked {
				row.Lost++
				continue
			}
			if drop > 0 && rng.float64() < drop {
				row.Lost++
				continue
			}
			wQ := int64(qScale)
			if newcomerK > 0 {
				n := r.reports[c]
				if period > 0 {
					n %= period
				}
				if n < newcomerK {
					wQ = newcomerWQ
				}
			}
			rQ := int64(rating*qScale + 0.5)
			r.sumQ[chosen] += (wQ * rQ) >> qShift
			r.cntQ[chosen] += wQ
			r.reports[c]++
		}

		if row.Requests > 0 {
			sel := float64(row.Requests)
			row.MeanRegret = float64(row.regretQ) / sel / qScale
			row.HitRate = float64(row.tierCount[workload.Good]) / sel
			row.GoodShare = row.HitRate
			row.MediumShare = float64(row.tierCount[workload.Medium]) / sel
			row.BadShare = float64(row.tierCount[workload.Bad]) / sel
		}
		if decayNum > 0 {
			for _, id := range r.ids {
				r.sumQ[id] = decayQ(r.sumQ[id], decayNum)
				r.cntQ[id] = decayQ(r.cntQ[id], decayNum)
			}
		}
		row.RepMAE = r.repMAE()
		rows = append(rows, row)
		totReq += row.Requests
		totOK += row.OK
		totLost += row.Lost
		totRegretQ += row.regretQ
		totGood += row.tierCount[workload.Good]
	}

	rpt := &Report{Scenario: sc, Seed: r.seed, Rounds: rows, Requests: totReq, OK: totOK, Lost: totLost}
	if totReq > 0 {
		rpt.MeanRegret = float64(totRegretQ) / float64(totReq) / qScale
		rpt.HitRate = float64(totGood) / float64(totReq)
	}
	if len(rows) > 0 {
		rpt.FinalRepMAE = rows[len(rows)-1].RepMAE
	}
	rpt.TopServices = r.topServices(3)
	rpt.render()
	return rpt
}

func (r *refState) repMAE() float64 {
	rep := r.computeRep()
	var sum float64
	n := 0
	for _, id := range r.ids {
		if r.cntQ[id] == 0 {
			continue
		}
		sum += math.Abs(rep[id] - r.baseTrueU[id])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (r *refState) topServices(k int) []TopService {
	rep := r.computeRep()
	var out []TopService
	used := map[core.ServiceID]bool{}
	for len(out) < k && len(out) < len(r.ids) {
		best, bestID := math.Inf(-1), core.ServiceID("")
		for _, id := range r.ids {
			if !used[id] && rep[id] > best {
				best, bestID = rep[id], id
			}
		}
		used[bestID] = true
		out = append(out, TopService{ID: string(bestID), Reputation: best, Tier: r.tier[bestID].String()})
	}
	return out
}

// TestDifferentialSoAvsMap replays the kitchen-sink scenario through both
// engines at the three reference seeds and demands byte-identical
// reports, sequentially and at -parallel 4.
func TestDifferentialSoAvsMap(t *testing.T) {
	for _, seed := range []int64{42, 7, 123} {
		want := newRefState(fullScenario(), seed).run()
		for _, workers := range []int{1, 4} {
			got := runScenario(t, fullScenario(), seed, workers)
			if got.Text != want.Text {
				t.Fatalf("seed %d workers %d: SoA report diverges from map reference:\n--- map\n%s\n--- soa\n%s",
					seed, workers, want.Text, got.Text)
			}
		}
	}
}

// TestDifferentialPlain covers the mechanisms the kitchen-sink scenario
// does not: advertised, mean and plain beta, honest population.
func TestDifferentialPlain(t *testing.T) {
	for _, kind := range []string{"advertised", "mean", "beta"} {
		sc := plainScenario(Mechanism{Kind: kind})
		want := newRefState(sc, 42).run()
		got := runScenario(t, plainScenario(Mechanism{Kind: kind}), 42, 4)
		if got.Text != want.Text {
			t.Fatalf("mechanism %s: SoA report diverges from map reference:\n--- map\n%s\n--- soa\n%s",
				kind, want.Text, got.Text)
		}
	}
}
