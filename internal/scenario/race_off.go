//go:build !race

package scenario

// raceEnabled reports whether the race detector is compiled in; tests use
// it to size scenario runs so `go test -race` stays tractable.
const raceEnabled = false
