package scenario

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func minimalDoc() string {
	return `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}}}`
}

func TestParseDefaults(t *testing.T) {
	sc, err := Parse([]byte(minimalDoc()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Rounds != 24 {
		t.Fatalf("rounds default = %d", sc.Rounds)
	}
	if sc.Population.Services.GoodFrac != 0.3 || sc.Population.Services.BadFrac != 0.3 {
		t.Fatalf("tier fractions default = %g/%g", sc.Population.Services.GoodFrac, sc.Population.Services.BadFrac)
	}
	if sc.Population.Services.Jitter != 0.08 || sc.Population.Services.Exaggeration != 0.5 {
		t.Fatalf("service defaults = jitter %g exaggeration %g", sc.Population.Services.Jitter, sc.Population.Services.Exaggeration)
	}
	if sc.Population.Consumers.Regions != 1 {
		t.Fatalf("regions default = %d", sc.Population.Consumers.Regions)
	}
	if sc.Mechanism.Kind != "beta" || sc.Mechanism.NewcomerWeight != 1 {
		t.Fatalf("mechanism defaults = %+v", sc.Mechanism)
	}
	if sc.Selection.Explore != 0.05 || sc.Selection.Candidates != 16 || sc.Selection.ReputationWeight != 0.7 {
		t.Fatalf("selection defaults = %+v", sc.Selection)
	}
	if sc.Traffic.Shape != "uniform" || sc.Traffic.Rate != 1 {
		t.Fatalf("traffic defaults = %+v", sc.Traffic)
	}
}

func TestParseWhitewashDefaults(t *testing.T) {
	doc := `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},
		"attacks":[{"kind":"whitewash","fraction":0.2}]}`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a := sc.Attacks[0]
	if a.Inner != "complementary" || a.Period != 5 {
		t.Fatalf("whitewash defaults = inner %q period %d", a.Inner, a.Period)
	}
}

func TestParseFaultPreset(t *testing.T) {
	doc := `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},
		"faults":{"profile":"outage"}}`
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(sc.Faults.Outages) == 0 {
		t.Fatalf("preset %q expanded to no outages: %+v", "outage", sc.Faults)
	}
}

// TestParseErrorsNameField is the satellite's contract: every rejection
// must carry the offending field's path.
func TestParseErrorsNameField(t *testing.T) {
	cases := []struct {
		name  string
		doc   string
		field string
	}{
		{"badVersion", `{"version":9,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}}}`, "version"},
		{"noName", `{"version":1,"population":{"services":{"n":10},"consumers":{"n":20}}}`, "name"},
		{"tinyServices", `{"version":1,"name":"t","population":{"services":{"n":1},"consumers":{"n":20}}}`, "population.services.n"},
		{"hugeConsumers", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20000000}}}`, "population.consumers.n"},
		{"tierSum", `{"version":1,"name":"t","population":{"services":{"n":10,"goodFrac":0.8,"badFrac":0.5},"consumers":{"n":20}}}`, "population.services.badFrac"},
		{"badMechanism", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"mechanism":{"kind":"magic"}}`, "mechanism.kind"},
		{"halfLifeOnBeta", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"mechanism":{"kind":"beta","halfLife":5}}`, "mechanism.halfLife"},
		{"noopNewcomer", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"mechanism":{"newcomerReports":5}}`, "mechanism.newcomerReports"},
		{"badAttack", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"attacks":[{"kind":"ddos","fraction":0.1}]}`, "attacks[0].kind"},
		{"attackSum", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"attacks":[{"kind":"badmouth","fraction":0.7},{"kind":"random","fraction":0.6}]}`, "attacks"},
		{"alliesOnBadmouth", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"attacks":[{"kind":"badmouth","fraction":0.1,"alliedServices":0.2}]}`, "attacks[0].alliedServices"},
		{"innerWhitewash", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"attacks":[{"kind":"whitewash","fraction":0.1,"inner":"whitewash"}]}`, "attacks[0].inner"},
		{"presetConflict", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"faults":{"profile":"lossy","drop":0.5}}`, "faults.profile"},
		{"unknownPreset", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"faults":{"profile":"volcano"}}`, "faults.profile"},
		{"badOutage", `{"version":1,"name":"t","rounds":10,"population":{"services":{"n":10},"consumers":{"n":20}},"faults":{"outages":[{"from":12,"to":14}]}}`, "faults.outages[0]"},
		{"badResilience", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"resilience":{"profile":"hope"}}`, "resilience.profile"},
		{"clippedDiurnal", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"traffic":{"shape":"diurnal","rate":0.9,"amplitude":0.5}}`, "traffic.rate"},
		{"amplitudeOnUniform", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"traffic":{"amplitude":0.5}}`, "traffic.amplitude"},
		{"flashOutside", `{"version":1,"name":"t","rounds":10,"population":{"services":{"n":10},"consumers":{"n":20}},"traffic":{"flash":{"round":8,"width":5,"multiplier":4}}}`, "traffic.flash.width"},
		{"partitionRegion", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20,"regions":2}},"traffic":{"partitions":[{"region":5,"from":1,"to":3}]}}`, "traffic.partitions[0].region"},
		{"churnRange", `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"traffic":{"churn":{"leave":1.5,"rejoin":0.5}}}`, "traffic.churn.leave"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("Parse accepted an invalid document")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a FieldError: %v", err)
			}
			if fe.Field != tc.field {
				t.Fatalf("error names field %q, want %q (%v)", fe.Field, tc.field, err)
			}
		})
	}
}

func TestParseStrictDecoding(t *testing.T) {
	for name, doc := range map[string]string{
		"unknownField": `{"version":1,"name":"t","population":{"services":{"n":10},"consumers":{"n":20}},"bogus":1}`,
		"trailing":     minimalDoc() + `{"more":true}`,
		"notJSON":      `scenario: yes please`,
		"wrongType":    `{"version":"one","name":"t"}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse([]byte(doc)); err == nil {
				t.Fatal("Parse accepted a malformed document")
			} else if !strings.Contains(err.Error(), "scenario") {
				t.Fatalf("error lacks package context: %v", err)
			}
		})
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("testdata/definitely-not-there.json"); err == nil {
		t.Fatal("ParseFile accepted a missing file")
	}
}

// TestNormalizeIdempotent: Parse output fed back through Normalize must
// not change or error — New() relies on this.
func TestNormalizeIdempotent(t *testing.T) {
	sc, err := Parse([]byte(minimalDoc()))
	if err != nil {
		t.Fatal(err)
	}
	before := *sc
	if err := sc.Normalize(); err != nil {
		t.Fatalf("second Normalize errored: %v", err)
	}
	if !reflect.DeepEqual(*sc, before) {
		t.Fatalf("second Normalize changed the document: %+v vs %+v", *sc, before)
	}
}
