package scenario

import (
	"strings"
	"testing"
)

// fullScenario exercises every engine feature at a size tests can afford:
// diurnal+flash traffic, churn, partitions, a three-way attack cocktail,
// drop+outage faults, decay mechanism with a newcomer discount.
func fullScenario() *Scenario {
	return &Scenario{
		Version:     1,
		Name:        "test-full",
		Description: "kitchen-sink scenario for engine tests",
		Rounds:      16,
		Population: Population{
			Services:  Services{N: 60, ExaggerateFrac: 0.2},
			Consumers: Consumers{N: 3000, Heterogeneity: 0.5, Regions: 4},
		},
		Mechanism: Mechanism{Kind: "decay", HalfLife: 8, NewcomerWeight: 0.3, NewcomerReports: 3},
		Attacks: []Attack{
			{Kind: "collusion", Fraction: 0.15, AlliedServices: 0.1},
			{Kind: "badmouth", Fraction: 0.1},
			{Kind: "whitewash", Fraction: 0.1, Inner: "complementary", Period: 4},
		},
		Faults:     &Faults{Drop: 0.1, Outages: []Window{{From: 6, To: 8}}},
		Resilience: &Resilience{Profile: "breaker"},
		Traffic: Traffic{
			Shape: "diurnal", Rate: 0.5, Amplitude: 0.5, Period: 8,
			Flash:      &Flash{Round: 10, Width: 2, Multiplier: 3},
			Churn:      &Churn{Leave: 0.05, Rejoin: 0.3},
			Partitions: []Partition{{Region: 2, From: 3, To: 5}},
		},
	}
}

func runScenario(t *testing.T, sc *Scenario, seed int64, workers int) *Report {
	t.Helper()
	eng, err := New(sc, seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng.Run(workers)
}

// TestEngineDeterministicAcrossWorkers is the core SoA determinism claim:
// identical report bytes at every worker count, including a worker count
// far above the chunk count.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{42, 7, 123} {
		ref := runScenario(t, fullScenario(), seed, 1)
		if ref.Requests == 0 {
			t.Fatalf("seed %d: no requests simulated", seed)
		}
		for _, workers := range []int{2, 4, 13} {
			got := runScenario(t, fullScenario(), seed, workers)
			if got.Text != ref.Text {
				t.Fatalf("seed %d: report differs at %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s",
					seed, workers, ref.Text, workers, got.Text)
			}
		}
	}
}

// TestEngineSeedSensitivity guards against the RNG collapsing to one
// stream: different seeds must give different reports.
func TestEngineSeedSensitivity(t *testing.T) {
	a := runScenario(t, fullScenario(), 42, 2)
	b := runScenario(t, fullScenario(), 43, 2)
	if a.Text == b.Text {
		t.Fatal("seeds 42 and 43 produced identical reports")
	}
}

func plainScenario(mech Mechanism) *Scenario {
	return &Scenario{
		Version: 1,
		Name:    "test-plain",
		Rounds:  20,
		Population: Population{
			Services:  Services{N: 50, ExaggerateFrac: 0.3, Exaggeration: 1.5},
			Consumers: Consumers{N: 2000},
		},
		Mechanism: mech,
	}
}

// TestReputationBeatsAdvertised is the survey's core claim at engine
// scale: with exaggerating services, reputation-guided selection must
// find better services than trusting advertisements.
func TestReputationBeatsAdvertised(t *testing.T) {
	adv := runScenario(t, plainScenario(Mechanism{Kind: "advertised"}), 42, 4)
	beta := runScenario(t, plainScenario(Mechanism{Kind: "beta"}), 42, 4)
	if beta.HitRate <= adv.HitRate {
		t.Fatalf("beta hitRate %.3f not above advertised %.3f", beta.HitRate, adv.HitRate)
	}
	if beta.MeanRegret >= adv.MeanRegret {
		t.Fatalf("beta meanRegret %.4f not below advertised %.4f", beta.MeanRegret, adv.MeanRegret)
	}
}

// TestLearningCurve: under an honest population the hit rate of the last
// quarter of rounds should beat the first round (reputation converges).
func TestLearningCurve(t *testing.T) {
	rpt := runScenario(t, plainScenario(Mechanism{Kind: "beta"}), 42, 4)
	first := rpt.Rounds[0]
	last := rpt.Rounds[len(rpt.Rounds)-1]
	if last.HitRate <= first.HitRate {
		t.Fatalf("hit rate did not improve: round 0 %.3f vs final %.3f", first.HitRate, last.HitRate)
	}
}

// TestNewcomerDiscountBluntsWhitewash: with a newcomer discount the
// registry's final reputation error under whitewashing must not exceed
// the undiscounted registry's.
func TestNewcomerDiscountBluntsWhitewash(t *testing.T) {
	base := plainScenario(Mechanism{Kind: "beta"})
	base.Attacks = []Attack{{Kind: "whitewash", Fraction: 0.3, Inner: "complementary", Period: 3}}
	undefended := runScenario(t, base, 42, 4)

	guarded := plainScenario(Mechanism{Kind: "beta", NewcomerWeight: 0.1, NewcomerReports: 5})
	guarded.Attacks = []Attack{{Kind: "whitewash", Fraction: 0.3, Inner: "complementary", Period: 3}}
	defended := runScenario(t, guarded, 42, 4)

	if defended.FinalRepMAE > undefended.FinalRepMAE {
		t.Fatalf("newcomer discount made reputation error worse: %.4f > %.4f",
			defended.FinalRepMAE, undefended.FinalRepMAE)
	}
}

// TestOutageLosesFeedback: submits inside the outage window must be
// counted lost, and rounds outside it must not lose more than drop noise.
func TestOutageLosesFeedback(t *testing.T) {
	sc := plainScenario(Mechanism{Kind: "beta"})
	sc.Faults = &Faults{Outages: []Window{{From: 5, To: 8}}}
	rpt := runScenario(t, sc, 42, 2)
	for _, row := range rpt.Rounds {
		inWindow := row.Round >= 5 && row.Round < 8
		if inWindow && row.Lost != row.Requests {
			t.Fatalf("round %d inside outage lost %d of %d", row.Round, row.Lost, row.Requests)
		}
		if !inWindow && row.Lost != 0 {
			t.Fatalf("round %d outside outage lost %d", row.Round, row.Lost)
		}
	}
}

// TestPartitionScopesLossToRegion: with 4 regions and one partitioned,
// partition-round losses are ≈ a quarter of requests — strictly between
// zero and everything.
func TestPartitionScopesLossToRegion(t *testing.T) {
	sc := plainScenario(Mechanism{Kind: "beta"})
	sc.Population.Consumers.Regions = 4
	sc.Traffic.Partitions = []Partition{{Region: 1, From: 4, To: 6}}
	rpt := runScenario(t, sc, 42, 2)
	for _, row := range rpt.Rounds {
		inWindow := row.Round >= 4 && row.Round < 6
		if inWindow {
			if row.Lost == 0 || row.Lost == row.Requests {
				t.Fatalf("round %d partition lost %d of %d — want a regional share", row.Round, row.Lost, row.Requests)
			}
			if share := float64(row.Lost) / float64(row.Requests); share > 0.35 {
				t.Fatalf("round %d partition lost share %.2f — more than one region's worth", row.Round, share)
			}
		} else if row.Lost != 0 {
			t.Fatalf("round %d outside partition lost %d", row.Round, row.Lost)
		}
	}
}

// TestReportShape sanity-checks the canonical text layout the golden
// digests hash.
func TestReportShape(t *testing.T) {
	rpt := runScenario(t, fullScenario(), 42, 2)
	for _, want := range []string{
		"== scenario test-full (schema v1, seed 42) ==",
		"mechanism: decay(halfLife=8) newcomer(w=0.3,k=3)",
		"attacks: collusion 15% (allies 10%), badmouth 10%, whitewash 10% (inner complementary, period 4)",
		"faults: drop 0.1, outage [6,8)  resilience: breaker",
		"traffic: diurnal rate 0.5 amp 0.5 period 8; flash x3 @ [10,12); churn leave 0.05 rejoin 0.3; partition region 2 [3,5)",
		"summary: requests=",
		"top 1: s",
	} {
		if !strings.Contains(rpt.Text, want) {
			t.Fatalf("report missing %q:\n%s", want, rpt.Text)
		}
	}
	if len(rpt.Digest()) != 64 {
		t.Fatalf("digest %q not a sha256 hex", rpt.Digest())
	}
	data, err := rpt.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !strings.Contains(string(data), `"name": "test-full"`) || !strings.Contains(string(data), `"digest"`) {
		t.Fatalf("JSON summary missing fields: %s", data)
	}
}
