package scenario

import (
	"math"
	"sync"
	"sync/atomic"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/workload"
)

// The engine simulates a scenario over flat struct-of-arrays slabs: every
// per-agent quantity is a dense-int-indexed array slice, there is not one
// map lookup or allocation on the per-consumer hot path, and rounds run
// as parallel epochs.
//
// Determinism contract (DESIGN.md §9): reports are byte-identical at any
// worker count because
//
//  1. every consumer's randomness comes from counter-based streams keyed
//     (seed, round, consumer, purpose) — scheduling cannot reorder draws;
//  2. consumers write only their own slab rows during an epoch and read
//     only the epoch-start reputation snapshot — no read-your-neighbour;
//  3. cross-consumer reductions (reputation sums, regret, counters) are
//     accumulated as fixed-point int64, and integer addition is
//     associative — merge order cannot change a total;
//  4. everything else (decay, reputation, report rendering) runs on the
//     single coordinator goroutine between epochs.

// Fixed-point scale for ratings, weights and regret accumulation.
const (
	qShift = 20
	qScale = 1 << qShift
)

// chunkSize is the fixed consumer-partition granule. It is part of the
// determinism story only in that it is constant: workers grab chunks from
// an atomic cursor, and since chunk content is index-derived and results
// merge through int64 sums, which worker ran a chunk is unobservable.
const chunkSize = 4096

// Lying behaviours, resolved from the attack cocktail.
const (
	behavHonest uint8 = iota
	behavBadmouth
	behavBallot
	behavCollusion
	behavComplementary
	behavRandom
)

// resolvedAttack is one cocktail entry compiled onto the consumer index
// space: consumers in [prev.end, end) run it.
type resolvedAttack struct {
	end      int
	behav    uint8
	period   int32 // whitewash identity-reset period; 0 = stable identity
	allyFrom int32 // first allied service index; nS = no allies
}

// Engine is one compiled scenario: population slabs, attack plan and
// registry aggregates. Build with New, run once per Engine with Run.
type Engine struct {
	sc   *Scenario
	seed int64

	nS, nC  int
	regions int
	rounds  int

	// Service slabs, [nS × k] row-major on the workload.PrefMetrics
	// columns (k=4) and the rating subset (k=3, availability excluded).
	advN4     []float64
	tN4       []float64
	tN3       []float64
	avail     []float64
	tier      []uint8
	baseTrueU []float64
	svcIDs    *core.DenseIDs

	// Consumer slabs.
	wN4      []float64 // normalized preference weights, nC × 4
	rwN3     []float64 // normalized rating weights, nC × 3
	bestTrue []float64 // oracle: best true utility per consumer
	alive    []byte    // marketplace-churn presence
	reports  []int32   // accepted reports per consumer (newcomer discount)

	plan []resolvedAttack

	// Mechanism and policy knobs, resolved out of sc so the hot loop
	// never chases the config structs.
	mechKind   string
	decayNum   int64 // 16-bit fixed-point per-round decay factor; 0 = none
	newcomerWQ int64
	newcomerK  int32
	explore    float64
	candK      int
	rho        float64
	drop       float64
	staleServe bool
	churnLeave, churnRejoin float64
	jitter     float64

	// Registry aggregates — written only between epochs, on the
	// coordinator goroutine; workers read the per-round snapshot.
	gSumQ, gCntQ []int64
}

// New compiles a scenario into an engine. sc is normalized in place
// (Parse output already is); the seed argument is used when the scenario
// does not pin one.
func New(sc *Scenario, defaultSeed int64) (*Engine, error) {
	if err := sc.Normalize(); err != nil {
		return nil, err
	}
	seed := sc.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	nS, nC := sc.Population.Services.N, sc.Population.Consumers.N
	e := &Engine{
		sc:      sc,
		seed:    seed,
		nS:      nS,
		nC:      nC,
		regions: sc.Population.Consumers.Regions,
		rounds:  sc.Rounds,

		advN4:     make([]float64, nS*4),
		tN4:       make([]float64, nS*4),
		tN3:       make([]float64, nS*3),
		avail:     make([]float64, nS),
		baseTrueU: make([]float64, nS),
		svcIDs:    core.NewDenseIDs(nS),

		wN4:     make([]float64, nC*4),
		rwN3:    make([]float64, nC*3),
		alive:   make([]byte, nC),
		reports: make([]int32, nC),

		mechKind: sc.Mechanism.Kind,
		explore:  sc.Selection.Explore,
		candK:    sc.Selection.Candidates,
		rho:      sc.Selection.ReputationWeight,

		gSumQ: make([]int64, nS),
		gCntQ: make([]int64, nS),
	}
	if e.mechKind == "advertised" {
		e.rho = 0
	}
	if sc.Mechanism.Kind == "decay" {
		e.decayNum = int64(math.Pow(2, -1/float64(sc.Mechanism.HalfLife))*65536 + 0.5)
	}
	e.newcomerWQ = int64(sc.Mechanism.NewcomerWeight*qScale + 0.5)
	e.newcomerK = int32(sc.Mechanism.NewcomerReports)
	if f := sc.Faults; f != nil {
		e.drop = f.Drop
	}
	e.staleServe = sc.Resilience == nil || sc.Resilience.Profile == "breaker"
	if ch := sc.Traffic.Churn; ch != nil {
		e.churnLeave, e.churnRejoin = ch.Leave, ch.Rejoin
	}

	e.buildServices()
	e.buildConsumers()
	e.buildPlan()
	return e, nil
}

// prefCols maps the PrefMetrics columns into SlabMetrics columns, and
// rating/ratingIDs cover PrefMetrics minus availability (the per-call
// rating excludes it: a successful call trivially observed availability
// 1, so its signal enters through failures rating 0 — the workload.Grade
// rule).
func prefCols() (pref, rating []int, ratingIDs []qos.MetricID, availAt int) {
	pos := map[qos.MetricID]int{}
	for i, id := range workload.SlabMetrics {
		pos[id] = i
	}
	for i, id := range workload.PrefMetrics {
		pref = append(pref, pos[id])
		if id == qos.Availability {
			availAt = i
		} else {
			rating = append(rating, pos[id])
			ratingIDs = append(ratingIDs, id)
		}
	}
	return pref, rating, ratingIDs, availAt
}

func (e *Engine) buildServices() {
	sv := e.sc.Population.Services
	slab := workload.GenerateServiceSlab(simclock.Stream(e.seed, "scenario.services"), workload.ServiceOptions{
		N:              sv.N,
		GoodFrac:       sv.GoodFrac,
		BadFrac:        sv.BadFrac,
		ExaggerateFrac: sv.ExaggerateFrac,
		Exaggeration:   sv.Exaggeration,
		Jitter:         sv.Jitter,
	})
	e.jitter = slab.Jitter
	e.tier = slab.Tier
	scale := workload.GradeScale()
	pref, rating, ratingIDs, _ := prefCols()
	availCol := 0
	for i, id := range workload.SlabMetrics {
		if id == qos.Availability {
			availCol = i
		}
	}
	for s := 0; s < e.nS; s++ {
		e.svcIDs.Add(string(core.NewServiceID(s + 1)))
		e.avail[s] = slab.TruthAt(s, availCol)
		var baseSum float64
		for m, col := range pref {
			id := workload.PrefMetrics[m]
			e.advN4[s*4+m] = scale.Normalize(id, slab.AdvertisedAt(s, col))
			tn := scale.Normalize(id, slab.TruthAt(s, col))
			e.tN4[s*4+m] = tn
			baseSum += tn
		}
		for m, col := range rating {
			e.tN3[s*3+m] = scale.Normalize(ratingIDs[m], slab.TruthAt(s, col))
		}
		e.baseTrueU[s] = baseSum / 4 * e.avail[s]
	}
}

func (e *Engine) buildConsumers() {
	co := e.sc.Population.Consumers
	slab := workload.GenerateConsumerSlab(simclock.Stream(e.seed, "scenario.consumers"), co.N, co.Heterogeneity)
	_, _, _, availAt := prefCols()
	for c := 0; c < e.nC; c++ {
		var sum, rsum float64
		for m := 0; m < 4; m++ {
			w := slab.WeightAt(c, m)
			sum += w
			if m != availAt {
				rsum += w
			}
		}
		for m := 0; m < 4; m++ {
			w := slab.WeightAt(c, m)
			if sum > 0 {
				e.wN4[c*4+m] = w / sum
			} else {
				e.wN4[c*4+m] = 0.25
			}
		}
		k := 0
		for m := 0; m < 4; m++ {
			if m == availAt {
				continue
			}
			w := slab.WeightAt(c, m)
			if rsum > 0 {
				e.rwN3[c*3+k] = w / rsum
			} else {
				e.rwN3[c*3+k] = 1.0 / 3
			}
			k++
		}
		e.alive[c] = 1
	}
}

func (e *Engine) buildPlan() {
	start := 0
	for _, a := range e.sc.Attacks {
		n := int(math.Ceil(a.Fraction * float64(e.nC)))
		end := start + n
		if end > e.nC {
			end = e.nC
		}
		kind := a.Kind
		var period int32
		if kind == "whitewash" {
			kind = a.Inner
			period = int32(a.Period)
		}
		var behav uint8
		switch kind {
		case "badmouth":
			behav = behavBadmouth
		case "ballot-stuff":
			behav = behavBallot
		case "collusion":
			behav = behavCollusion
		case "complementary":
			behav = behavComplementary
		case "random":
			behav = behavRandom
		}
		allyFrom := int32(e.nS)
		if behav == behavBallot || behav == behavCollusion {
			nAllies := int(math.Ceil(a.AlliedServices * float64(e.nS)))
			if nAllies > e.nS {
				nAllies = e.nS
			}
			// Allies come from the exaggerator end of the population —
			// the services with the most to gain (GenerateServiceSlab
			// places exaggerators at the top indexes).
			allyFrom = int32(e.nS - nAllies)
		}
		e.plan = append(e.plan, resolvedAttack{end: end, behav: behav, period: period, allyFrom: allyFrom})
		start = end
	}
}

// attackOf resolves consumer c's cocktail entry; honest by default.
//
//lint:hotpath called once per submit; a short linear scan over the cocktail
func (e *Engine) attackOf(c int) (behav uint8, period, allyFrom int32) {
	for i := range e.plan {
		if c < e.plan[i].end {
			return e.plan[i].behav, e.plan[i].period, e.plan[i].allyFrom
		}
	}
	return behavHonest, 0, int32(e.nS)
}

// scoreCand blends advertised utility with the reputation snapshot.
//
//lint:hotpath scored per candidate per selection — the innermost loop of the engine
func (e *Engine) scoreCand(wOff, s int, rep []float64, rho float64) float64 {
	a := e.advN4
	w := e.wN4
	base := s * 4
	adv := w[wOff]*a[base] + w[wOff+1]*a[base+1] + w[wOff+2]*a[base+2] + w[wOff+3]*a[base+3]
	return (1-rho)*adv + rho*rep[s]
}

// trueU is the oracle utility of service s for consumer c: preference-
// weighted normalized ground truth, scaled by availability (failed calls
// yield utility 0, so expected utility tracks the success ratio).
//
//lint:hotpath once per selection plus the oracle precompute sweep
func (e *Engine) trueU(c, s int) float64 {
	t := e.tN4
	w := e.wN4
	wOff, base := c*4, s*4
	u := w[wOff]*t[base] + w[wOff+1]*t[base+1] + w[wOff+2]*t[base+2] + w[wOff+3]*t[base+3]
	return u * e.avail[s]
}

// accum is one worker's epoch-private accumulator. Totals are exact
// int64 fixed-point so the cross-worker merge is order-independent.
type accum struct {
	sumQ, cntQ []int64
	requests   int64
	ok         int64
	lost       int64
	regretQ    int64
	tierCount  [4]int64
}

func newAccum(nS int) *accum {
	return &accum{sumQ: make([]int64, nS), cntQ: make([]int64, nS)}
}

func (a *accum) reset() {
	for i := range a.sumQ {
		a.sumQ[i] = 0
		a.cntQ[i] = 0
	}
	a.requests, a.ok, a.lost, a.regretQ = 0, 0, 0, 0
	a.tierCount = [4]int64{}
}

// parallelChunks fans [0,n) over workers in fixed chunkSize granules.
// fn(worker, lo, hi) must only write worker-private or consumer-private
// state; the atomic cursor decides who runs a chunk, never what it does.
func parallelChunks(n, workers int, fn func(worker, lo, hi int)) {
	chunks := (n + chunkSize - 1) / chunkSize
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for ci := 0; ci < chunks; ci++ {
			lo := ci * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				ci := int(cursor.Add(1)) - 1
				if ci >= chunks {
					return
				}
				lo := ci * chunkSize
				hi := lo + chunkSize
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// computeOracle fills bestTrue: each consumer's best attainable true
// utility over the whole catalog. Pure per consumer, so any worker count
// produces identical values.
func (e *Engine) computeOracle(workers int) {
	e.bestTrue = make([]float64, e.nC)
	parallelChunks(e.nC, workers, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			best := 0.0
			for s := 0; s < e.nS; s++ {
				if u := e.trueU(c, s); u > best {
					best = u
				}
			}
			e.bestTrue[c] = best
		}
	})
}

// computeRep renders the registry aggregates into per-service reputation
// in [0,1].
func (e *Engine) computeRep(rep []float64) {
	switch e.mechKind {
	case "advertised":
		for s := range rep {
			rep[s] = 0.5
		}
	case "mean":
		for s := range rep {
			if e.gCntQ[s] == 0 {
				rep[s] = 0.5
			} else {
				rep[s] = float64(e.gSumQ[s]) / float64(e.gCntQ[s])
			}
		}
	default: // beta, decay: Laplace-smoothed toward the 0.5 prior
		for s := range rep {
			rep[s] = float64(e.gSumQ[s]+qScale) / float64(e.gCntQ[s]+2*qScale)
		}
	}
}

// decayQ multiplies a fixed-point aggregate by the 16-bit decay factor
// without overflowing: split the value so the wide product never exceeds
// 63 bits (aggregates stay under 2^62 by the schema's population and
// round ceilings).
func decayQ(v, num int64) int64 {
	return (v>>16)*num + ((v&0xffff)*num)>>16
}

// runChunk advances consumers [lo,hi) through one epoch: churn
// transition, activity draw, then the full select→invoke→grade→distort→
// submit step for active consumers.
//
//lint:hotpath the parallel epoch body; slab indexing only, no allocation
func (e *Engine) runChunk(round, lo, hi int, rateByRegion []float64, repByRegion [][]float64, rhoByRegion []float64, blockedSub []bool, acc *accum) {
	for c := lo; c < hi; c++ {
		if e.churnLeave > 0 {
			rng := streamFor(e.seed, round, c, purposeChurn)
			u := rng.float64()
			if e.alive[c] != 0 {
				if u < e.churnLeave {
					e.alive[c] = 0
				}
			} else if u < e.churnRejoin {
				e.alive[c] = 1
			}
		}
		if e.alive[c] == 0 {
			continue
		}
		region := c % e.regions
		rate := rateByRegion[region]
		if rate <= 0 {
			continue
		}
		if rate < 1 {
			rng := streamFor(e.seed, round, c, purposeActivity)
			if rng.float64() >= rate {
				continue
			}
		}
		e.stepConsumer(round, c, repByRegion[region], rhoByRegion[region], blockedSub[region], acc)
	}
}

// stepConsumer is the million-agent inner loop: one consumer's selection,
// invocation, grading, distortion and submit for one round.
//
//lint:hotpath runs once per active consumer per round; no allocation
func (e *Engine) stepConsumer(round, c int, rep []float64, rho float64, subBlocked bool, acc *accum) {
	rng := streamFor(e.seed, round, c, purposeAction)
	acc.requests++

	// Select: ε-greedy over a candidate sample scored against the
	// epoch-start reputation snapshot.
	nS := e.nS
	chosen := 0
	if rng.float64() < e.explore {
		chosen = rng.intn(nS)
	} else {
		wOff := c * 4
		best := math.Inf(-1)
		if nS <= e.candK {
			for s := 0; s < nS; s++ {
				if sc := e.scoreCand(wOff, s, rep, rho); sc > best {
					best, chosen = sc, s
				}
			}
		} else {
			for j := 0; j < e.candK; j++ {
				s := rng.intn(nS)
				if sc := e.scoreCand(wOff, s, rep, rho); sc > best {
					best, chosen = sc, s
				}
			}
		}
	}

	// Oracle accounting.
	regret := e.bestTrue[c] - e.trueU(c, chosen)
	if regret < 0 {
		regret = 0
	}
	acc.regretQ += int64(regret*qScale + 0.5)
	acc.tierCount[e.tier[chosen]]++

	// Invoke and grade: success tracks true availability; observed
	// values are truth plus bounded jitter, folded by the consumer's
	// rating weights (availability excluded — the workload.Grade rule).
	rating := 0.0
	success := rng.float64() < e.avail[chosen]
	if success {
		acc.ok++
		base := chosen * 3
		rOff := c * 3
		for m := 0; m < 3; m++ {
			v := e.tN3[base+m] + e.jitter*(2*rng.float64()-1)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			rating += e.rwN3[rOff+m] * v
		}
	}

	// Distort per the cocktail.
	behav, period, allyFrom := e.attackOf(c)
	switch behav {
	case behavBadmouth:
		rating = 0.02
	case behavBallot:
		if int32(chosen) >= allyFrom {
			rating = 0.98
		}
	case behavCollusion:
		if int32(chosen) >= allyFrom {
			rating = 0.98
		} else {
			rating = 0.02
		}
	case behavComplementary:
		rating = 1 - rating
	case behavRandom:
		rating = rng.float64()
	}

	// Submit: lost to partitions/outages or the fault layer's drop rate;
	// otherwise folded into the worker's exact fixed-point accumulators.
	if subBlocked {
		acc.lost++
		return
	}
	if e.drop > 0 && rng.float64() < e.drop {
		acc.lost++
		return
	}
	wQ := int64(qScale)
	if e.newcomerK > 0 {
		n := e.reports[c]
		if period > 0 {
			n %= period // whitewash: identity resets every period reports
		}
		if n < e.newcomerK {
			wQ = e.newcomerWQ
		}
	}
	rQ := int64(rating*qScale + 0.5)
	acc.sumQ[chosen] += (wQ * rQ) >> qShift
	acc.cntQ[chosen] += wQ
	e.reports[c]++
}

// Run simulates the scenario with the given worker count and returns the
// rendered report. The report text is byte-identical at any workers
// value; run each Engine once (aggregates are consumed).
func (e *Engine) Run(workers int) *Report {
	if workers < 1 {
		workers = 1
	}
	if e.bestTrue == nil {
		e.computeOracle(workers)
	}

	var outages []Window
	if e.sc.Faults != nil {
		outages = e.sc.Faults.Outages
	}
	parts := e.sc.Traffic.Partitions
	frozenOut := make([][]float64, len(outages))
	frozenPart := make([][]float64, len(parts))

	rep := make([]float64, e.nS)
	scratch := make([]float64, e.nS)
	rateByRegion := make([]float64, e.regions)
	repByRegion := make([][]float64, e.regions)
	rhoByRegion := make([]float64, e.regions)
	blockedSub := make([]bool, e.regions)

	accs := make([]*accum, workers)
	for w := range accs {
		accs[w] = newAccum(e.nS)
	}

	rows := make([]RoundStats, 0, e.rounds)
	var totReq, totOK, totLost, totRegretQ int64
	var totTier [4]int64

	for round := 0; round < e.rounds; round++ {
		e.computeRep(rep)
		for i, w := range outages {
			if round == w.From {
				frozenOut[i] = append([]float64(nil), rep...)
			}
		}
		for i, p := range parts {
			if round == p.From {
				frozenPart[i] = append([]float64(nil), rep...)
			}
		}
		outIdx := -1
		for i, w := range outages {
			if round >= w.From && round < w.To {
				outIdx = i
				break
			}
		}
		for r := 0; r < e.regions; r++ {
			rateByRegion[r] = e.sc.Traffic.RateAt(round, r, e.regions)
			repByRegion[r] = rep
			rhoByRegion[r] = e.rho
			blockedSub[r] = false
			var frozen []float64
			cut := false
			if outIdx >= 0 {
				cut, frozen = true, frozenOut[outIdx]
			} else {
				for i, p := range parts {
					if p.Region == r && round >= p.From && round < p.To {
						cut, frozen = true, frozenPart[i]
						break
					}
				}
			}
			if cut {
				blockedSub[r] = true
				if e.staleServe && frozen != nil {
					repByRegion[r] = frozen // breaker: serve the stale cache
				} else {
					rhoByRegion[r] = 0 // naive: discovery failed, advertised only
				}
			}
		}

		for _, a := range accs {
			a.reset()
		}
		parallelChunks(e.nC, workers, func(worker, lo, hi int) {
			e.runChunk(round, lo, hi, rateByRegion, repByRegion, rhoByRegion, blockedSub, accs[worker])
		})

		// Merge: int64 additions, so worker count and chunk order are
		// unobservable in the totals.
		var row RoundStats
		row.Round = round
		for _, a := range accs {
			for s := 0; s < e.nS; s++ {
				e.gSumQ[s] += a.sumQ[s]
				e.gCntQ[s] += a.cntQ[s]
			}
			row.Requests += a.requests
			row.OK += a.ok
			row.Lost += a.lost
			row.regretQ += a.regretQ
			for t := range a.tierCount {
				row.tierCount[t] += a.tierCount[t]
			}
		}
		if row.Requests > 0 {
			sel := float64(row.Requests)
			row.MeanRegret = float64(row.regretQ) / sel / qScale
			row.HitRate = float64(row.tierCount[workload.Good]) / sel
			row.GoodShare = row.HitRate
			row.MediumShare = float64(row.tierCount[workload.Medium]) / sel
			row.BadShare = float64(row.tierCount[workload.Bad]) / sel
		}
		if e.decayNum > 0 {
			for s := 0; s < e.nS; s++ {
				e.gSumQ[s] = decayQ(e.gSumQ[s], e.decayNum)
				e.gCntQ[s] = decayQ(e.gCntQ[s], e.decayNum)
			}
		}
		e.computeRep(scratch)
		row.RepMAE = e.repMAE(scratch)
		rows = append(rows, row)

		totReq += row.Requests
		totOK += row.OK
		totLost += row.Lost
		totRegretQ += row.regretQ
		for t := range row.tierCount {
			totTier[t] += row.tierCount[t]
		}
	}

	rpt := &Report{
		Scenario: e.sc,
		Seed:     e.seed,
		Rounds:   rows,
		Requests: totReq,
		OK:       totOK,
		Lost:     totLost,
	}
	if totReq > 0 {
		rpt.MeanRegret = float64(totRegretQ) / float64(totReq) / qScale
		rpt.HitRate = float64(totTier[workload.Good]) / float64(totReq)
	}
	if len(rows) > 0 {
		rpt.FinalRepMAE = rows[len(rows)-1].RepMAE
	}
	rpt.TopServices = e.topServices(3)
	rpt.render()
	return rpt
}

// repMAE is the mean absolute error between reputation and base-profile
// true utility over services the registry has heard about.
func (e *Engine) repMAE(rep []float64) float64 {
	var sum float64
	n := 0
	for s := 0; s < e.nS; s++ {
		if e.gCntQ[s] == 0 {
			continue
		}
		sum += math.Abs(rep[s] - e.baseTrueU[s])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// topServices lists the k best services by final reputation, dense index
// order breaking ties, materialized to string IDs at this report
// boundary only.
func (e *Engine) topServices(k int) []TopService {
	rep := make([]float64, e.nS)
	e.computeRep(rep)
	out := make([]TopService, 0, k)
	used := make([]bool, e.nS)
	for len(out) < k && len(out) < e.nS {
		best, bestAt := math.Inf(-1), -1
		for s := 0; s < e.nS; s++ {
			if !used[s] && rep[s] > best {
				best, bestAt = rep[s], s
			}
		}
		if bestAt < 0 {
			break
		}
		used[bestAt] = true
		out = append(out, TopService{
			ID:         e.svcIDs.ID(bestAt),
			Reputation: best,
			Tier:       workload.Tier(e.tier[bestAt]).String(),
		})
	}
	return out
}
