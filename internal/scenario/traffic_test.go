package scenario

import (
	"math"
	"testing"
)

// The traffic-shape property tests (satellite 4): shapes are
// deterministic per configuration, conserve volume within stated bounds,
// and respond monotonically to their intensity knobs.

func diurnal(rate, amplitude float64, period int) Traffic {
	return Traffic{Shape: "diurnal", Rate: rate, Amplitude: amplitude, Period: period}
}

func TestRateAtDeterministic(t *testing.T) {
	tr := diurnal(0.4, 0.8, 12)
	tr.Flash = &Flash{Round: 5, Width: 3, Multiplier: 2}
	for round := 0; round < 30; round++ {
		for region := 0; region < 4; region++ {
			a := tr.RateAt(round, region, 4)
			b := tr.RateAt(round, region, 4)
			if a != b {
				t.Fatalf("RateAt(%d,%d) unstable: %v vs %v", round, region, a, b)
			}
			if a < 0 || a > 1 {
				t.Fatalf("RateAt(%d,%d) = %v outside [0,1]", round, region, a)
			}
		}
	}
}

// TestDiurnalConservesVolume: over whole periods the sine modulation
// integrates away, so expected volume equals the flat rate×rounds×
// consumers — for any region count, since regions are pure phase shifts.
func TestDiurnalConservesVolume(t *testing.T) {
	const consumers = 1000
	for _, regions := range []int{1, 2, 3, 4, 7} {
		for _, period := range []int{8, 12, 24} {
			tr := diurnal(0.5, 0.5, period)
			rounds := 3 * period
			got := tr.ExpectedVolume(rounds, consumers, regions)
			want := 0.5 * float64(rounds) * consumers
			if rel := math.Abs(got-want) / want; rel > 1e-9 {
				t.Fatalf("regions=%d period=%d: volume %.6f vs flat %.6f (rel %.2e)",
					regions, period, got, want, rel)
			}
		}
	}
}

// TestUniformVolumeExact: uniform shape is exactly rate×rounds×consumers.
func TestUniformVolumeExact(t *testing.T) {
	tr := Traffic{Shape: "uniform", Rate: 0.3}
	if got, want := tr.ExpectedVolume(10, 500, 2), 0.3*10*500; math.Abs(got-want) > 1e-9 {
		t.Fatalf("volume %.6f, want %.6f", got, want)
	}
}

// TestFlashVolumeBounded: a flash crowd adds at most
// (multiplier-1)×rate×width×consumers extra volume — and at least some,
// when the base rate leaves headroom.
func TestFlashVolumeBounded(t *testing.T) {
	base := diurnal(0.25, 0.5, 8)
	flashed := base
	flashed.Flash = &Flash{Round: 8, Width: 2, Multiplier: 3}
	const rounds, consumers = 24, 1000
	vBase := base.ExpectedVolume(rounds, consumers, 1)
	vFlash := flashed.ExpectedVolume(rounds, consumers, 1)
	if vFlash <= vBase {
		t.Fatalf("flash did not add volume: %.1f vs %.1f", vFlash, vBase)
	}
	maxExtra := (3 - 1) * 0.25 * (1 + 0.5) * 2 * consumers
	if vFlash-vBase > maxExtra+1e-6 {
		t.Fatalf("flash added %.1f, above the %.1f bound", vFlash-vBase, maxExtra)
	}
}

// TestVolumeMonotoneInIntensity: raising any intensity knob — base rate,
// flash multiplier, flash width — never decreases expected volume.
func TestVolumeMonotoneInIntensity(t *testing.T) {
	const rounds, consumers, regions = 24, 500, 2
	prev := -1.0
	for _, rate := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		v := diurnal(rate, 0.5, 8).ExpectedVolume(rounds, consumers, regions)
		if v < prev {
			t.Fatalf("volume fell from %.2f to %.2f as rate rose to %g", prev, v, rate)
		}
		prev = v
	}
	prev = -1
	for _, mult := range []float64{1, 2, 4, 8, 100} {
		tr := diurnal(0.25, 0.5, 8)
		tr.Flash = &Flash{Round: 4, Width: 4, Multiplier: mult}
		v := tr.ExpectedVolume(rounds, consumers, regions)
		if v < prev {
			t.Fatalf("volume fell from %.2f to %.2f as multiplier rose to %g", prev, v, mult)
		}
		prev = v
	}
	prev = -1
	for _, width := range []int{1, 2, 4, 8} {
		tr := Traffic{Shape: "uniform", Rate: 0.5}
		tr.Flash = &Flash{Round: 0, Width: width, Multiplier: 1.5}
		v := tr.ExpectedVolume(rounds, consumers, regions)
		if v < prev {
			t.Fatalf("volume fell from %.2f to %.2f as width rose to %d", prev, v, width)
		}
		prev = v
	}
}

// TestEngineVolumeMonotone lifts monotonicity to the simulated engine:
// because activity draws use common random numbers (one private stream
// per consumer-round), raising the rate can only switch consumers on,
// so realized request counts are monotone per round, not just in
// expectation.
func TestEngineVolumeMonotone(t *testing.T) {
	run := func(rate float64) *Report {
		sc := plainScenario(Mechanism{Kind: "beta"})
		sc.Traffic = Traffic{Shape: "uniform", Rate: rate}
		return runScenario(t, sc, 42, 4)
	}
	lo, hi := run(0.3), run(0.6)
	for i := range lo.Rounds {
		if hi.Rounds[i].Requests < lo.Rounds[i].Requests {
			t.Fatalf("round %d: requests fell from %d to %d as rate rose",
				i, lo.Rounds[i].Requests, hi.Rounds[i].Requests)
		}
	}
}

// TestRegionPhaseSpread: with several regions, per-round global rate
// variance shrinks versus a single region — the phase shift spreads load.
func TestRegionPhaseSpread(t *testing.T) {
	tr := diurnal(0.5, 0.8, 16)
	spread := func(regions int) float64 {
		var lo, hi = math.Inf(1), math.Inf(-1)
		for round := 0; round < 16; round++ {
			var sum float64
			for r := 0; r < regions; r++ {
				sum += tr.RateAt(round, r, regions)
			}
			sum /= float64(regions)
			lo, hi = math.Min(lo, sum), math.Max(hi, sum)
		}
		return hi - lo
	}
	if s1, s4 := spread(1), spread(4); s4 >= s1 {
		t.Fatalf("4-region load spread %.4f not below single-region %.4f", s4, s1)
	}
}
