package scenario

import (
	"encoding/json"
	"path/filepath"
	"runtime"
	"testing"
)

func loadBenchScenario(b *testing.B, name string) *Scenario {
	b.Helper()
	sc, err := ParseFile(filepath.Join(scenariosDir, name))
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// benchEngine runs one scenario end to end per iteration. Engine build
// sits outside the timer (Run consumes the engine, so each iteration
// rebuilds), leaving b.Elapsed() to time simulation only — that is what
// the rounds/s and agentrounds/s throughput metrics divide by.
func benchEngine(b *testing.B, name string, workers int) {
	sc := loadBenchScenario(b, name)
	var report *Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := New(cloneForBench(b, sc), goldenSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		report = eng.Run(workers)
	}
	if report.Requests == 0 {
		b.Fatal("benchmark simulated no requests")
	}
	sec := b.Elapsed().Seconds()
	rounds := float64(b.N) * float64(sc.Rounds)
	b.ReportMetric(rounds/sec, "rounds/s")
	b.ReportMetric(rounds*float64(sc.Population.Consumers.N)/sec, "agentrounds/s")
	b.ReportMetric(float64(report.Requests)/float64(sc.Rounds), "requests/round")
}

// BenchmarkScenarioEngineMillion is the acceptance benchmark: the
// 10^6-consumer scenario at full parallelism, reporting simulated
// throughput per round (merged into BENCH_PR9.json by make bench-scenario).
func BenchmarkScenarioEngineMillion(b *testing.B) {
	benchEngine(b, "million-flash-crowd.json", runtime.NumCPU())
}

// BenchmarkScenarioEngineMillionSerial pins the single-worker baseline so
// the parallel speedup stays measured.
func BenchmarkScenarioEngineMillionSerial(b *testing.B) {
	benchEngine(b, "million-flash-crowd.json", 1)
}

// BenchmarkScenarioEngineGolden runs the full golden-sized cocktail
// scenario — the shape CI exercises — at 4 workers.
func BenchmarkScenarioEngineGolden(b *testing.B) {
	benchEngine(b, "lossy-cocktail.json", 4)
}

func cloneForBench(b *testing.B, sc *Scenario) *Scenario {
	b.Helper()
	data, err := json.Marshal(sc)
	if err != nil {
		b.Fatal(err)
	}
	clone, err := Parse(data)
	if err != nil {
		b.Fatal(err)
	}
	return clone
}
