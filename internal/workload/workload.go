// Package workload generates the populations the experiments run on:
// services with hidden ground-truth QoS across quality tiers, providers
// with portfolios, consumers with preference profiles of controllable
// heterogeneity, honest grading of observations into feedback, and the
// oracle utilities regret is measured against.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/soa"
)

// Tier is a service quality class.
type Tier int

const (
	// Good services deliver strong QoS on every metric.
	Good Tier = iota + 1
	// Medium services are serviceable but unremarkable.
	Medium
	// Bad services are slow, flaky and inaccurate.
	Bad
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case Good:
		return "good"
	case Medium:
		return "medium"
	case Bad:
		return "bad"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// refScale is the per-metric raw range used for grading and oracles; it
// spans the generator's output range so normalized values use the full
// [0,1] scale.
var refScale = map[qos.MetricID][2]float64{
	qos.ResponseTime: {50, 500},
	qos.Availability: {0.4, 1},
	qos.Accuracy:     {0, 1},
	qos.Throughput:   {10, 100},
	qos.Cost:         {1, 10},
}

// gradeScale is built once: the scale is fixed, the Normalizer is read-only
// after construction, and grading sits on the per-feedback hot path —
// rebuilding it per call dominated Grade and TrueUtility profiles.
var gradeScale = func() *qos.Normalizer {
	lo, hi := qos.Vector{}, qos.Vector{}
	for m, r := range refScale {
		lo[m], hi[m] = r[0], r[1]
	}
	return qos.NewNormalizer([]qos.Vector{lo, hi})
}()

// GradeScale returns the fixed normalizer used to turn raw observations
// into [0,1] ratings. Fixed scales (rather than per-query populations)
// keep honest consumers' grades comparable across rounds — the shared
// "common ontology" understanding of Section 2. The returned Normalizer is
// shared and immutable; it is safe for concurrent use.
func GradeScale() *qos.Normalizer {
	return gradeScale
}

// ServiceSpec is one generated service: its public description (possibly
// exaggerated) and its hidden behaviour.
type ServiceSpec struct {
	Desc     soa.Description
	Behavior soa.Behavior
	Tier     Tier
	// Exaggerated marks dishonest advertising.
	Exaggerated bool
}

// ServiceOptions configures generation.
type ServiceOptions struct {
	// N is the number of services (required).
	N int
	// Category is the functional category (default "compute").
	Category string
	// GoodFrac and BadFrac partition the population (default 0.3/0.3,
	// remainder Medium).
	GoodFrac, BadFrac float64
	// ExaggerateFrac of services advertise Exaggeration better than truth.
	ExaggerateFrac float64
	// Exaggeration strength (default 0.5 = claims 50% better).
	Exaggeration float64
	// PortfolioSize is services per provider (default 1).
	PortfolioSize int
	// Jitter is per-invocation noise (default 0.08).
	Jitter float64
	// IDOffset offsets generated service/provider numbering so multiple
	// populations can coexist.
	IDOffset int
}

func (o *ServiceOptions) setDefaults() {
	if o.Category == "" {
		o.Category = "compute"
	}
	if o.GoodFrac == 0 && o.BadFrac == 0 {
		o.GoodFrac, o.BadFrac = 0.3, 0.3
	}
	if o.Exaggeration == 0 {
		o.Exaggeration = 0.5
	}
	if o.PortfolioSize <= 0 {
		o.PortfolioSize = 1
	}
	if o.Jitter == 0 {
		o.Jitter = 0.08
	}
}

// tierTruth draws a ground-truth vector for a tier.
func tierTruth(t Tier, rng *rand.Rand) qos.Vector {
	u := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	switch t {
	case Good:
		return qos.Vector{
			qos.ResponseTime: u(60, 150),
			qos.Availability: u(0.93, 0.995),
			qos.Accuracy:     u(0.85, 0.97),
			qos.Throughput:   u(70, 95),
			qos.Cost:         u(3, 7),
		}
	case Bad:
		return qos.Vector{
			qos.ResponseTime: u(320, 480),
			qos.Availability: u(0.5, 0.75),
			qos.Accuracy:     u(0.15, 0.45),
			qos.Throughput:   u(12, 35),
			qos.Cost:         u(3, 7),
		}
	default:
		return qos.Vector{
			qos.ResponseTime: u(180, 300),
			qos.Availability: u(0.8, 0.92),
			qos.Accuracy:     u(0.55, 0.8),
			qos.Throughput:   u(40, 65),
			qos.Cost:         u(3, 7),
		}
	}
}

// GenerateServices builds the service population deterministically from
// rng. Tiers are assigned round-robin by the requested fractions so every
// prefix of the population is representative.
func GenerateServices(rng *rand.Rand, opts ServiceOptions) []ServiceSpec {
	opts.setDefaults()
	out := make([]ServiceSpec, 0, opts.N)
	nGood := int(math.Round(opts.GoodFrac * float64(opts.N)))
	nBad := int(math.Round(opts.BadFrac * float64(opts.N)))
	nExaggerate := int(math.Round(opts.ExaggerateFrac * float64(opts.N)))
	for i := 0; i < opts.N; i++ {
		tier := Medium
		switch {
		case i < nGood:
			tier = Good
		case i < nGood+nBad:
			tier = Bad
		}
		truth := tierTruth(tier, rng)
		exaggerated := false
		advertised := truth.Clone()
		// Exaggerators are drawn from the worst services first — the ones
		// with the most to gain, per the paper's incentive argument.
		if nExaggerate > 0 && i >= opts.N-nExaggerate {
			advertised = soa.Exaggerate(truth, opts.Exaggeration)
			exaggerated = true
		}
		idx := opts.IDOffset + i + 1
		provider := core.NewProviderID(opts.IDOffset + i/opts.PortfolioSize + 1)
		spec := ServiceSpec{
			Desc: soa.Description{
				Service:    core.NewServiceID(idx),
				Provider:   provider,
				Name:       fmt.Sprintf("%s-%03d", opts.Category, idx),
				Category:   opts.Category,
				Operations: []soa.Operation{{Name: "Execute", Input: "request", Output: "response"}},
				Advertised: advertised,
				Endpoint:   fmt.Sprintf("sim://%s", core.NewServiceID(idx)),
			},
			Behavior:    soa.Behavior{True: truth, Jitter: opts.Jitter},
			Tier:        tier,
			Exaggerated: exaggerated,
		}
		out = append(out, spec)
	}
	return out
}

// GenerateSpecialists builds a population of trade-off services: each
// service is independently strong or weak on every metric, so no service
// dominates and consumers with different preferences genuinely prefer
// different services. This is the population where personalization matters
// (experiment C4); tier populations (GenerateServices) are where global
// reputation suffices.
func GenerateSpecialists(rng *rand.Rand, n int, category string) []ServiceSpec {
	if category == "" {
		category = "compute"
	}
	u := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	pick := func(strongLo, strongHi, weakLo, weakHi float64) (float64, bool) {
		if rng.Float64() < 0.5 {
			return u(strongLo, strongHi), true
		}
		return u(weakLo, weakHi), false
	}
	out := make([]ServiceSpec, 0, n)
	for i := 0; i < n; i++ {
		rt, rtStrong := pick(60, 120, 350, 480)
		av, avStrong := pick(0.95, 0.995, 0.62, 0.8)
		acc, accStrong := pick(0.85, 0.97, 0.2, 0.5)
		cost, costStrong := pick(1.2, 3, 7, 9.8)
		truth := qos.Vector{
			qos.ResponseTime: rt,
			qos.Availability: av,
			qos.Accuracy:     acc,
			qos.Cost:         cost,
			qos.Throughput:   u(40, 60),
		}
		strongs := 0
		for _, s := range []bool{rtStrong, avStrong, accStrong, costStrong} {
			if s {
				strongs++
			}
		}
		tier := Medium
		switch {
		case strongs >= 3:
			tier = Good
		case strongs <= 1:
			tier = Bad
		}
		idx := i + 1
		out = append(out, ServiceSpec{
			Desc: soa.Description{
				Service:    core.NewServiceID(idx),
				Provider:   core.NewProviderID(idx),
				Name:       fmt.Sprintf("%s-%03d", category, idx),
				Category:   category,
				Operations: []soa.Operation{{Name: "Execute", Input: "request", Output: "response"}},
				Advertised: truth.Clone(),
				Endpoint:   fmt.Sprintf("sim://%s", core.NewServiceID(idx)),
			},
			Behavior: soa.Behavior{True: truth, Jitter: 0.08},
			Tier:     tier,
		})
	}
	return out
}

// ConsumerSpec is one generated consumer.
type ConsumerSpec struct {
	ID    core.ConsumerID
	Prefs qos.Preferences
}

// BasePreferences is the common-knowledge profile every consumer shares at
// heterogeneity 0: "everyone prefers a short execution time and a low
// price" (Section 3.1), plus dependability.
func BasePreferences() qos.Preferences {
	return qos.Preferences{
		qos.ResponseTime: 1,
		qos.Availability: 1,
		qos.Accuracy:     1,
		qos.Cost:         1,
	}
}

// GenerateConsumers builds n consumers. heterogeneity in [0,1] blends each
// consumer's weights between the shared base profile (0) and an individual
// random profile (1).
func GenerateConsumers(rng *rand.Rand, n int, heterogeneity float64) []ConsumerSpec {
	heterogeneity = math.Max(0, math.Min(1, heterogeneity))
	base := BasePreferences()
	out := make([]ConsumerSpec, 0, n)
	metrics := make([]qos.MetricID, 0, len(base))
	for metric := range base {
		metrics = append(metrics, metric)
	}
	// Draw weights in sorted metric order: pairing RNG draws with metrics
	// through map iteration would differ between processes.
	metrics = qos.SortIDs(metrics)
	for i := 0; i < n; i++ {
		prefs := qos.Preferences{}
		for _, metric := range metrics {
			individual := rng.Float64() * 2
			prefs[metric] = (1-heterogeneity)*base[metric] + heterogeneity*individual
		}
		out = append(out, ConsumerSpec{ID: core.NewConsumerID(i + 1), Prefs: prefs})
	}
	return out
}

// Grade converts an observation into the honest facet ratings a consumer
// with the given preferences would report: per-facet normalized values
// plus an overall preference utility. Failed invocations rate overall 0.
func Grade(obs qos.Observation, prefs qos.Preferences) map[core.Facet]float64 {
	if !obs.Success {
		return map[core.Facet]float64{core.FacetOverall: 0, qos.Availability: 0}
	}
	normalized := GradeScale().NormalizeVector(obs.Values)
	ratings := make(map[core.Facet]float64, len(normalized)+1)
	for metric, v := range normalized {
		ratings[metric] = v
	}
	// The overall verdict of a SUCCESSFUL call excludes availability: a
	// call that succeeded trivially "observed" availability 1, and counting
	// it would inflate every up-but-awful service toward neutral. The
	// availability signal enters through failed calls, which rate 0.
	perCall := normalized.Clone()
	delete(perCall, qos.Availability)
	callPrefs := prefs.Clone()
	delete(callPrefs, qos.Availability)
	ratings[core.FacetOverall] = callPrefs.Utility(perCall)
	return ratings
}

// TrueUtility is the oracle: the utility the consumer would experience
// from the service's current ground truth, under the grading scale. The
// availability is folded in as the expected success ratio.
func TrueUtility(spec ServiceSpec, prefs qos.Preferences) float64 {
	truth := spec.Behavior.True
	normalized := GradeScale().NormalizeVector(truth)
	u := prefs.Utility(normalized)
	avail := 1.0
	if a, ok := truth[qos.Availability]; ok {
		avail = a
	}
	// A failed call yields utility 0, so expected utility scales with
	// availability.
	return u * avail
}

// BestUtility returns the maximum oracle utility over the population plus
// the index achieving it.
func BestUtility(specs []ServiceSpec, prefs qos.Preferences) (float64, int) {
	best, bestIdx := math.Inf(-1), -1
	for i, s := range specs {
		if u := TrueUtility(s, prefs); u > best {
			best, bestIdx = u, i
		}
	}
	return best, bestIdx
}
