package workload

import (
	"fmt"
	"math"
	"math/rand"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/soa"
)

// This file is the struct-of-arrays (SoA) representation of the generated
// populations. The map-based ServiceSpec/ConsumerSpec path above stays as
// the reference representation the classic experiment suite runs on; the
// slabs below hold the same populations as flat arrays keyed by dense int
// indexes, which is what lets the scenario engine simulate 10^6-consumer
// populations in cache-friendly memory with no per-agent maps on the hot
// path. Generation consumes the RNG draw-for-draw identically to the
// legacy generators, so slab and spec populations built from one seed are
// the same population — enforced by the differential tests in
// slab_test.go and by the scenario engine's SoA-vs-map replay.

// SlabMetrics is the fixed metric axis of every service slab: the grading
// scale's metrics in sorted order, so flat offsets and sorted-map
// iteration agree on which column is which.
var SlabMetrics = func() []qos.MetricID {
	ids := make([]qos.MetricID, 0, len(refScale))
	for m := range refScale {
		ids = append(ids, m)
	}
	return qos.SortIDs(ids)
}()

// PrefMetrics is the fixed metric axis of every consumer slab: the base
// preference profile's metrics in sorted order (the order GenerateConsumers
// draws weights in).
var PrefMetrics = func() []qos.MetricID {
	base := BasePreferences()
	ids := make([]qos.MetricID, 0, len(base))
	for m := range base {
		ids = append(ids, m)
	}
	return qos.SortIDs(ids)
}()

// ServiceSlab is the service population as struct-of-arrays: row i holds
// service dense index i (ServiceID numbering stays i+IDOffset+1, matching
// GenerateServices). Truth and Advertised are row-major [N × len(SlabMetrics)]
// in SlabMetrics column order.
type ServiceSlab struct {
	N          int
	Truth      []float64
	Advertised []float64
	Tier       []uint8 // Tier values (Good/Medium/Bad)
	Exaggerate []bool
	Jitter     float64
	Category   string

	portfolio int
	idOffset  int
}

// NumMetrics returns the slab's metric-column count.
func (s *ServiceSlab) NumMetrics() int { return len(SlabMetrics) }

// TruthAt returns the raw ground-truth value of service i on metric
// column m.
func (s *ServiceSlab) TruthAt(i, m int) float64 { return s.Truth[i*len(SlabMetrics)+m] }

// AdvertisedAt returns the advertised value of service i on metric
// column m.
func (s *ServiceSlab) AdvertisedAt(i, m int) float64 { return s.Advertised[i*len(SlabMetrics)+m] }

// GenerateServiceSlab builds the tiered service population in SoA form,
// consuming rng exactly as GenerateServices does — the two calls with
// equal seeds yield the same population (see Specs).
func GenerateServiceSlab(rng *rand.Rand, opts ServiceOptions) *ServiceSlab {
	opts.setDefaults()
	nm := len(SlabMetrics)
	s := &ServiceSlab{
		N:          opts.N,
		Truth:      make([]float64, opts.N*nm),
		Advertised: make([]float64, opts.N*nm),
		Tier:       make([]uint8, opts.N),
		Exaggerate: make([]bool, opts.N),
		Jitter:     opts.Jitter,
		Category:   opts.Category,
		portfolio:  opts.PortfolioSize,
		idOffset:   opts.IDOffset,
	}
	nGood := int(math.Round(opts.GoodFrac * float64(opts.N)))
	nBad := int(math.Round(opts.BadFrac * float64(opts.N)))
	nExaggerate := int(math.Round(opts.ExaggerateFrac * float64(opts.N)))
	for i := 0; i < opts.N; i++ {
		tier := Medium
		switch {
		case i < nGood:
			tier = Good
		case i < nGood+nBad:
			tier = Bad
		}
		truth := tierTruth(tier, rng)
		advertised := truth
		if nExaggerate > 0 && i >= opts.N-nExaggerate {
			advertised = soa.Exaggerate(truth, opts.Exaggeration)
			s.Exaggerate[i] = true
		}
		s.Tier[i] = uint8(tier)
		for m, id := range SlabMetrics {
			s.Truth[i*nm+m] = truth[id]
			s.Advertised[i*nm+m] = advertised[id]
		}
	}
	return s
}

// Spec materializes row i back into the map-based reference
// representation, byte-equal to what GenerateServices builds for the same
// draws.
func (s *ServiceSlab) Spec(i int) ServiceSpec {
	truth := make(qos.Vector, len(SlabMetrics))
	advertised := make(qos.Vector, len(SlabMetrics))
	for m, id := range SlabMetrics {
		truth[id] = s.TruthAt(i, m)
		advertised[id] = s.AdvertisedAt(i, m)
	}
	idx := s.idOffset + i + 1
	provider := core.NewProviderID(s.idOffset + i/s.portfolio + 1)
	return ServiceSpec{
		Desc: soa.Description{
			Service:    core.NewServiceID(idx),
			Provider:   provider,
			Name:       fmt.Sprintf("%s-%03d", s.Category, idx),
			Category:   s.Category,
			Operations: []soa.Operation{{Name: "Execute", Input: "request", Output: "response"}},
			Advertised: advertised,
			Endpoint:   fmt.Sprintf("sim://%s", core.NewServiceID(idx)),
		},
		Behavior:    soa.Behavior{True: truth, Jitter: s.Jitter},
		Tier:        Tier(s.Tier[i]),
		Exaggerated: s.Exaggerate[i],
	}
}

// Specs materializes the whole slab.
func (s *ServiceSlab) Specs() []ServiceSpec {
	out := make([]ServiceSpec, 0, s.N)
	for i := 0; i < s.N; i++ {
		out = append(out, s.Spec(i))
	}
	return out
}

// ConsumerSlab is the consumer population as struct-of-arrays: consumer
// dense index i (ConsumerID numbering stays i+1) holds its preference
// weights in Weights[i*len(PrefMetrics) : (i+1)*len(PrefMetrics)], in
// PrefMetrics column order.
type ConsumerSlab struct {
	N       int
	Weights []float64
}

// GenerateConsumerSlab builds n consumers in SoA form, consuming rng
// exactly as GenerateConsumers does: one Float64 per metric in sorted
// metric order per consumer.
func GenerateConsumerSlab(rng *rand.Rand, n int, heterogeneity float64) *ConsumerSlab {
	heterogeneity = math.Max(0, math.Min(1, heterogeneity))
	base := BasePreferences()
	nm := len(PrefMetrics)
	s := &ConsumerSlab{N: n, Weights: make([]float64, n*nm)}
	for i := 0; i < n; i++ {
		for m, metric := range PrefMetrics {
			individual := rng.Float64() * 2
			s.Weights[i*nm+m] = (1-heterogeneity)*base[metric] + heterogeneity*individual
		}
	}
	return s
}

// WeightAt returns consumer i's weight on preference column m.
func (s *ConsumerSlab) WeightAt(i, m int) float64 { return s.Weights[i*len(PrefMetrics)+m] }

// Spec materializes consumer i back into the map-based reference
// representation.
func (s *ConsumerSlab) Spec(i int) ConsumerSpec {
	prefs := make(qos.Preferences, len(PrefMetrics))
	for m, metric := range PrefMetrics {
		prefs[metric] = s.WeightAt(i, m)
	}
	return ConsumerSpec{ID: core.NewConsumerID(i + 1), Prefs: prefs}
}

// Specs materializes the whole slab.
func (s *ConsumerSlab) Specs() []ConsumerSpec {
	out := make([]ConsumerSpec, 0, s.N)
	for i := 0; i < s.N; i++ {
		out = append(out, s.Spec(i))
	}
	return out
}
