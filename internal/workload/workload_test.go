package workload

import (
	"math"
	"testing"

	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
)

func TestGenerateServicesTiersAndCounts(t *testing.T) {
	specs := GenerateServices(simclock.NewRand(1), ServiceOptions{N: 20, GoodFrac: 0.25, BadFrac: 0.25})
	if len(specs) != 20 {
		t.Fatalf("generated %d", len(specs))
	}
	counts := map[Tier]int{}
	for _, s := range specs {
		counts[s.Tier]++
		if err := s.Desc.Validate(); err != nil {
			t.Fatalf("invalid description: %v", err)
		}
	}
	if counts[Good] != 5 || counts[Bad] != 5 || counts[Medium] != 10 {
		t.Fatalf("tier counts = %v", counts)
	}
}

func TestGenerateServicesDeterministic(t *testing.T) {
	a := GenerateServices(simclock.NewRand(7), ServiceOptions{N: 5})
	b := GenerateServices(simclock.NewRand(7), ServiceOptions{N: 5})
	for i := range a {
		if a[i].Desc.Service != b[i].Desc.Service ||
			a[i].Behavior.True[qos.ResponseTime] != b[i].Behavior.True[qos.ResponseTime] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestTierQualityOrdering(t *testing.T) {
	specs := GenerateServices(simclock.NewRand(2), ServiceOptions{N: 30})
	prefs := BasePreferences()
	sums := map[Tier]float64{}
	counts := map[Tier]float64{}
	for _, s := range specs {
		sums[s.Tier] += TrueUtility(s, prefs)
		counts[s.Tier]++
	}
	g, m, b := sums[Good]/counts[Good], sums[Medium]/counts[Medium], sums[Bad]/counts[Bad]
	if !(g > m && m > b) {
		t.Fatalf("tier utilities not ordered: good=%g medium=%g bad=%g", g, m, b)
	}
}

func TestExaggeratorsAdvertiseBetterThanTruth(t *testing.T) {
	specs := GenerateServices(simclock.NewRand(3), ServiceOptions{N: 10, ExaggerateFrac: 0.3})
	nEx := 0
	for _, s := range specs {
		if !s.Exaggerated {
			if s.Desc.Advertised[qos.ResponseTime] != s.Behavior.True[qos.ResponseTime] {
				t.Fatal("honest service advertising differs from truth")
			}
			continue
		}
		nEx++
		if s.Desc.Advertised[qos.ResponseTime] >= s.Behavior.True[qos.ResponseTime] {
			t.Fatal("exaggerator not advertising better response time")
		}
	}
	if nEx != 3 {
		t.Fatalf("exaggerators = %d, want 3", nEx)
	}
	// Exaggerators come from the worst services.
	for _, s := range specs {
		if s.Exaggerated && s.Tier == Good {
			t.Fatal("a good service exaggerates; expected worst-first assignment")
		}
	}
}

func TestPortfolioGrouping(t *testing.T) {
	specs := GenerateServices(simclock.NewRand(4), ServiceOptions{N: 6, PortfolioSize: 3})
	if specs[0].Desc.Provider != specs[2].Desc.Provider {
		t.Fatal("first portfolio not grouped")
	}
	if specs[0].Desc.Provider == specs[3].Desc.Provider {
		t.Fatal("portfolios not separated")
	}
}

func TestGenerateConsumersHeterogeneity(t *testing.T) {
	homog := GenerateConsumers(simclock.NewRand(5), 10, 0)
	for _, c := range homog[1:] {
		if d := homog[0].Prefs.Distance(c.Prefs); d > 1e-9 {
			t.Fatalf("heterogeneity 0 produced distance %g", d)
		}
	}
	hetero := GenerateConsumers(simclock.NewRand(5), 10, 1)
	var sum float64
	n := 0
	for i := range hetero {
		for j := i + 1; j < len(hetero); j++ {
			sum += hetero[i].Prefs.Distance(hetero[j].Prefs)
			n++
		}
	}
	if sum/float64(n) < 0.05 {
		t.Fatalf("heterogeneity 1 mean distance = %g, want clearly positive", sum/float64(n))
	}
}

func TestGradeSuccess(t *testing.T) {
	obs := qos.Observation{
		Success: true,
		Values:  qos.Vector{qos.ResponseTime: 50, qos.Accuracy: 1},
		At:      simclock.Epoch,
	}
	ratings := Grade(obs, BasePreferences())
	if ratings[qos.ResponseTime] != 1 {
		t.Fatalf("best response time graded %g", ratings[qos.ResponseTime])
	}
	if ratings[qos.Accuracy] != 1 {
		t.Fatalf("perfect accuracy graded %g", ratings[qos.Accuracy])
	}
	if ov := ratings["overall"]; ov <= 0.5 {
		t.Fatalf("overall = %g", ov)
	}
}

func TestGradeFailure(t *testing.T) {
	ratings := Grade(qos.Observation{Success: false}, BasePreferences())
	if ratings["overall"] != 0 || ratings[qos.Availability] != 0 {
		t.Fatalf("failure grading = %v", ratings)
	}
}

func TestTrueUtilityAvailabilityFolding(t *testing.T) {
	spec := ServiceSpec{Behavior: soaBehavior(qos.Vector{
		qos.ResponseTime: 100, qos.Availability: 0.5, qos.Accuracy: 0.9,
	})}
	full := ServiceSpec{Behavior: soaBehavior(qos.Vector{
		qos.ResponseTime: 100, qos.Availability: 1, qos.Accuracy: 0.9,
	})}
	prefs := BasePreferences()
	if TrueUtility(spec, prefs) >= TrueUtility(full, prefs) {
		t.Fatal("availability not folded into oracle utility")
	}
}

func TestBestUtility(t *testing.T) {
	specs := GenerateServices(simclock.NewRand(6), ServiceOptions{N: 12})
	best, idx := BestUtility(specs, BasePreferences())
	if idx < 0 || math.IsInf(best, -1) {
		t.Fatal("BestUtility found nothing")
	}
	if specs[idx].Tier != Good {
		t.Fatalf("best service is %v, want good tier", specs[idx].Tier)
	}
	for _, s := range specs {
		if TrueUtility(s, BasePreferences()) > best {
			t.Fatal("BestUtility not maximal")
		}
	}
}

// soaBehavior is a tiny helper for oracle tests.
func soaBehavior(truth qos.Vector) soa.Behavior {
	return soa.Behavior{True: truth}
}

func TestGenerateSpecialistsTradeoffs(t *testing.T) {
	specs := GenerateSpecialists(simclock.NewRand(8), 40, "compute")
	if len(specs) != 40 {
		t.Fatalf("generated %d", len(specs))
	}
	// Services must genuinely trade off: across the population, no single
	// service dominates everyone's preferences. Check that at least two
	// different services are "best" for speed-lovers vs accuracy-lovers.
	speed := qos.Preferences{qos.ResponseTime: 1}
	precise := qos.Preferences{qos.Accuracy: 1}
	_, speedBest := BestUtility(specs, speed)
	_, accBest := BestUtility(specs, precise)
	if speedBest == accBest {
		// Possible but unlikely with 40 trade-off services; check the two
		// preferences at least produce different top-3 sets.
		t.Logf("single service best for both profiles; acceptable but rare")
	}
	for _, s := range specs {
		if err := s.Desc.Validate(); err != nil {
			t.Fatalf("invalid specialist: %v", err)
		}
		rt := s.Behavior.True[qos.ResponseTime]
		if rt < 50 || rt > 500 {
			t.Fatalf("response time %g outside grading scale", rt)
		}
	}
	// Deterministic.
	again := GenerateSpecialists(simclock.NewRand(8), 40, "compute")
	for i := range specs {
		if specs[i].Behavior.True[qos.ResponseTime] != again[i].Behavior.True[qos.ResponseTime] {
			t.Fatal("specialists not deterministic")
		}
	}
}

func TestGenerateSpecialistsDefaultCategory(t *testing.T) {
	specs := GenerateSpecialists(simclock.NewRand(1), 3, "")
	if specs[0].Desc.Category != "compute" {
		t.Fatalf("default category = %q", specs[0].Desc.Category)
	}
}

func TestTierStrings(t *testing.T) {
	if Good.String() != "good" || Medium.String() != "medium" || Bad.String() != "bad" {
		t.Fatal("tier strings changed")
	}
	if Tier(99).String() != "Tier(99)" {
		t.Fatal("unknown tier string")
	}
}

func TestGradeScaleNeutralOutsideKnownMetrics(t *testing.T) {
	n := GradeScale()
	if got := n.Normalize("made-up-metric", 123); got != 0.5 {
		t.Fatalf("unknown metric graded %g, want neutral", got)
	}
}
