package workload

import (
	"reflect"
	"testing"

	"wstrust/internal/qos"
	"wstrust/internal/simclock"
)

// TestServiceSlabMatchesSpecs is the population half of the SoA-vs-map
// differential: for the golden seeds, the slab generator consumes the RNG
// identically to GenerateServices and materializes byte-equal specs.
func TestServiceSlabMatchesSpecs(t *testing.T) {
	opts := ServiceOptions{N: 137, ExaggerateFrac: 0.2, PortfolioSize: 3, IDOffset: 10}
	for _, seed := range []int64{42, 7, 123} {
		want := GenerateServices(simclock.Stream(seed, "services"), opts)
		slab := GenerateServiceSlab(simclock.Stream(seed, "services"), opts)
		got := slab.Specs()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: slab specs differ from GenerateServices", seed)
		}
	}
}

// TestConsumerSlabMatchesSpecs is the consumer half of the differential.
func TestConsumerSlabMatchesSpecs(t *testing.T) {
	for _, seed := range []int64{42, 7, 123} {
		for _, het := range []float64{0, 0.5, 1} {
			want := GenerateConsumers(simclock.Stream(seed, "consumers"), 211, het)
			slab := GenerateConsumerSlab(simclock.Stream(seed, "consumers"), 211, het)
			got := slab.Specs()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d het %g: slab specs differ from GenerateConsumers", seed, het)
			}
		}
	}
}

// TestSlabMetricOrders pins the column axes: sorted, and PrefMetrics a
// subset of SlabMetrics — the flat offsets the scenario engine banks on.
func TestSlabMetricOrders(t *testing.T) {
	if got := qos.SortIDs(append([]qos.MetricID(nil), SlabMetrics...)); !reflect.DeepEqual(got, SlabMetrics) {
		t.Fatalf("SlabMetrics not sorted: %v", SlabMetrics)
	}
	if got := qos.SortIDs(append([]qos.MetricID(nil), PrefMetrics...)); !reflect.DeepEqual(got, PrefMetrics) {
		t.Fatalf("PrefMetrics not sorted: %v", PrefMetrics)
	}
	in := map[qos.MetricID]bool{}
	for _, m := range SlabMetrics {
		in[m] = true
	}
	for _, m := range PrefMetrics {
		if !in[m] {
			t.Fatalf("preference metric %s missing from SlabMetrics", m)
		}
	}
}

func TestSlabAccessors(t *testing.T) {
	slab := GenerateServiceSlab(simclock.Stream(1, "services"), ServiceOptions{N: 8, ExaggerateFrac: 0.5})
	for i := 0; i < slab.N; i++ {
		spec := slab.Spec(i)
		for m, id := range SlabMetrics {
			if slab.TruthAt(i, m) != spec.Behavior.True[id] {
				t.Fatalf("TruthAt(%d,%d) mismatch", i, m)
			}
			if slab.AdvertisedAt(i, m) != spec.Desc.Advertised[id] {
				t.Fatalf("AdvertisedAt(%d,%d) mismatch", i, m)
			}
		}
	}
	cs := GenerateConsumerSlab(simclock.Stream(1, "consumers"), 5, 0.7)
	for i := 0; i < cs.N; i++ {
		spec := cs.Spec(i)
		for m, id := range PrefMetrics {
			if cs.WeightAt(i, m) != spec.Prefs[id] {
				t.Fatalf("WeightAt(%d,%d) mismatch", i, m)
			}
		}
	}
}
