// Quickstart: publish a market of simulated weather services, attach the
// default reputation mechanism, and watch repeated trust-guided selection
// converge onto a genuinely good service.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wstrust"
)

func main() {
	market, err := wstrust.NewMarketplace(
		wstrust.WithSeed(2007),
		wstrust.WithExploration(0.15),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Alice cares about latency above all, then accuracy, then price.
	err = market.RegisterConsumer("alice", wstrust.Preferences{
		wstrust.ResponseTime: 3,
		wstrust.Accuracy:     2,
		wstrust.Cost:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	ids, err := market.PublishSimulated("weather", 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d weather services (quality hidden from alice)\n\n", len(ids))

	// Use the market: each call selects by trust + preferences, invokes the
	// service over simulated SOAP, grades the observed QoS, and feeds the
	// mechanism.
	counts := map[wstrust.ServiceID]int{}
	for i := 1; i <= 80; i++ {
		sel, err := market.Use("alice", "weather")
		if err != nil {
			log.Fatal(err)
		}
		counts[sel.Service]++
		if i%20 == 0 {
			fmt.Printf("after %2d uses: picked %s (trust %.2f, conf %.2f, rated %.2f)\n",
				i, sel.Service, sel.Trust.Score, sel.Trust.Confidence, sel.Rating)
		}
	}

	// Reveal the oracle: how good were the services alice settled on?
	fmt.Println("\nselection counts vs hidden true utility:")
	for _, id := range ids {
		if counts[id] == 0 {
			continue
		}
		u, _ := market.TrueUtility("alice", id)
		tv, _ := market.Score("alice", id, "weather")
		fmt.Printf("  %s  picked %2d×  true utility %.2f  learned score %.2f\n",
			id, counts[id], u, tv.Score)
	}

	fmt.Println("\nThe paper's Figure-3 taxonomy and Figure-4 typology are available as data:")
	fmt.Println(wstrust.TaxonomyTree())
}
