// Attacklab stages a coordinated unfair-rating campaign — a clique
// badmouthing a good service while ballot-stuffing a bad one — and shows
// round by round how the surveyed defenses (majority opinion, Dellarocas
// cluster filtering, Zhang & Cohen advisor trust) hold the line where the
// undefended mean collapses.
//
//	go run ./examples/attacklab
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"wstrust/internal/attack"
	"wstrust/internal/core"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
	"wstrust/internal/trust/filtering"
	"wstrust/internal/workload"
)

func main() {
	const seed = 23
	clock := simclock.NewVirtual()
	fabric := soa.NewFabric(clock, simclock.Stream(seed, "fabric"), soa.NewUDDI())
	specs := workload.GenerateServices(simclock.Stream(seed, "services"),
		workload.ServiceOptions{N: 10, Category: "payments", GoodFrac: 0.3, BadFrac: 0.3})
	for _, s := range specs {
		if err := fabric.Register(s.Desc, s.Behavior); err != nil {
			log.Fatal(err)
		}
	}
	victim := specs[0].Desc.Service // good tier
	shill := specs[3].Desc.Service  // bad tier
	fmt.Printf("victim (genuinely good): %s   shilled (genuinely bad): %s\n\n", victim, shill)

	consumers := workload.GenerateConsumers(simclock.Stream(seed, "consumers"), 20, 0)
	ids := make([]core.ConsumerID, len(consumers))
	for i, c := range consumers {
		ids[i] = c.ID
	}
	// 30% of the population colludes: pump the shill, trash the victim.
	liars := attack.Assign(ids, 0.3, attack.Collusion{
		Allies: map[core.EntityID]bool{shill: true},
	})
	fmt.Printf("%d of %d consumers collude\n\n", liars.LiarCount(), len(consumers))

	mechs := map[string]*filtering.Mechanism{
		"none":        filtering.New(filtering.None),
		"majority":    filtering.New(filtering.Majority),
		"cluster":     filtering.New(filtering.Cluster),
		"zhang-cohen": filtering.New(filtering.ZhangCohen),
	}
	order := []string{"none", "majority", "cluster", "zhang-cohen"}

	trueU := map[core.ServiceID]float64{}
	for _, s := range specs {
		trueU[s.Desc.Service] = workload.TrueUtility(s, workload.BasePreferences())
	}

	fmt.Printf("%-6s | victim score per defense (truth %.2f)        | shill score per defense (truth %.2f)\n",
		"round", trueU[victim], trueU[shill])
	fmt.Printf("%-6s | %-10s %-10s %-10s %-11s | %-10s %-10s %-10s %s\n",
		"", "none", "majority", "cluster", "zhang-cohen", "none", "majority", "cluster", "zhang-cohen")

	for round := 1; round <= 12; round++ {
		for _, c := range consumers {
			// Every consumer tries both contested services each round.
			for _, target := range []core.ServiceID{victim, shill} {
				res, err := fabric.Invoke(c.ID, target, "Execute")
				if err != nil {
					log.Fatal(err)
				}
				honest := workload.Grade(res.Observation, c.Prefs)
				ratings := map[core.Facet]float64{}
				for f, v := range honest {
					ratings[f] = liars.Distort(c.ID, target, v)
				}
				for _, m := range mechs {
					if err := m.Submit(core.Feedback{
						Consumer: c.ID, Service: target, Context: "payments",
						Observed: res.Observation, Ratings: ratings, At: clock.Now(),
					}); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		clock.Advance(time.Hour)
		if round%3 != 0 {
			continue
		}
		line := fmt.Sprintf("%-6d |", round)
		for _, svc := range []core.ServiceID{victim, shill} {
			for _, name := range order {
				tv, _ := mechs[name].Score(core.Query{
					Perspective: ids[len(ids)-1], // an honest consumer's view
					Subject:     svc, Context: "payments", Facet: core.FacetOverall,
				})
				width := 10
				if name == "zhang-cohen" && svc == victim {
					width = 11
				}
				line += fmt.Sprintf(" %-*.2f", width, tv.Score)
			}
			if svc == victim {
				line += " |"
			}
		}
		fmt.Println(line)
	}

	fmt.Println("\nfinal error vs ground truth (lower is better):")
	for _, name := range order {
		var errSum float64
		for _, svc := range []core.ServiceID{victim, shill} {
			tv, _ := mechs[name].Score(core.Query{
				Perspective: ids[len(ids)-1],
				Subject:     svc, Context: "payments", Facet: core.FacetOverall,
			})
			errSum += math.Abs(tv.Score - trueU[svc])
		}
		fmt.Printf("  %-12s %.3f\n", name, errSum/2)
	}
}
