// P2pmarket runs a fully decentralized service marketplace: QoS reports
// live on a P-Grid structured overlay (Vu, Hauswirth & Aberer), EigenTrust
// aggregates peer trust over a gossip network, and the complaint-based
// system of Aberer & Despotovic files grievances on the same trie — the
// survey's Section-5 "decentralized trust and reputation mechanisms for
// peer-to-peer based web service systems", with the message bills printed.
//
//	go run ./examples/p2pmarket
package main

import (
	"fmt"
	"log"
	"time"

	"wstrust/internal/core"
	"wstrust/internal/p2p"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
	"wstrust/internal/trust/complaints"
	"wstrust/internal/trust/eigentrust"
	"wstrust/internal/trust/vu"
	"wstrust/internal/workload"
)

func main() {
	const seed = 11
	clock := simclock.NewVirtual()
	fabric := soa.NewFabric(clock, simclock.Stream(seed, "fabric"), soa.NewUDDI())
	specs := workload.GenerateServices(simclock.Stream(seed, "services"),
		workload.ServiceOptions{N: 18, Category: "storage"})
	for _, s := range specs {
		if err := fabric.Register(s.Desc, s.Behavior); err != nil {
			log.Fatal(err)
		}
	}
	consumers := workload.GenerateConsumers(simclock.Stream(seed, "consumers"), 24, 0.3)

	// The P-Grid the QoS registries shard across.
	gridNet := p2p.NewNetwork()
	regIDs := make([]p2p.NodeID, 32)
	for i := range regIDs {
		regIDs[i] = p2p.NodeID(fmt.Sprintf("reg%02d", i))
	}
	// The registries self-organize the trie through pairwise encounters
	// (Aberer's bootstrap protocol) — construction messages included in
	// the bill below.
	grid, splits, err := p2p.BootstrapPGrid(gridNet, regIDs, 3, 700, simclock.Stream(seed, "grid"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P-Grid self-organized via pairwise encounters: %d splits, %d construction messages\n\n",
		splits, gridNet.MessageCount())
	specByID := map[core.ServiceID]workload.ServiceSpec{}
	for _, s := range specs {
		specByID[s.Desc.Service] = s
	}
	vuMech, err := vu.New(grid, regIDs, func(id core.ServiceID) (qos.Vector, bool) {
		s, ok := specByID[id]
		if !ok {
			return nil, false
		}
		return s.Behavior.True.Clone(), true // trusted monitoring agents
	})
	if err != nil {
		log.Fatal(err)
	}

	etNet := p2p.NewNetwork()
	et := eigentrust.New(eigentrust.WithNetwork(etNet))

	compNet := p2p.NewNetwork()
	compIDs := make([]p2p.NodeID, 16)
	for i := range compIDs {
		compIDs[i] = p2p.NodeID(fmt.Sprintf("peer%02d", i))
	}
	compGrid, err := p2p.BuildPGrid(compNet, compIDs, 2, simclock.Stream(seed, "comp-grid"))
	if err != nil {
		log.Fatal(err)
	}
	comp, err := complaints.New(compGrid, compIDs)
	if err != nil {
		log.Fatal(err)
	}

	mechs := []core.Mechanism{vuMech, et, comp}

	// Everyone uses the market for 25 rounds; every mechanism sees the same
	// feedback stream.
	var cands []core.Candidate
	for _, s := range specs {
		cands = append(cands, s.Desc.Candidate())
	}
	engine := core.NewEngine(vuMech, simclock.Stream(seed, "engine"),
		core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.15))
	for round := 0; round < 25; round++ {
		for _, c := range consumers {
			chosen, _, err := engine.Select(c.ID, c.Prefs, cands)
			if err != nil {
				log.Fatal(err)
			}
			res, err := fabric.Invoke(c.ID, chosen.Service, "Execute")
			if err != nil {
				log.Fatal(err)
			}
			fb := core.Feedback{
				Consumer: c.ID, Service: chosen.Service,
				Provider: specByID[chosen.Service].Desc.Provider,
				Context:  "storage", Observed: res.Observation,
				Ratings: workload.Grade(res.Observation, c.Prefs),
				At:      clock.Now(),
			}
			for _, m := range mechs {
				if err := m.Submit(fb); err != nil {
					log.Fatal(err)
				}
			}
		}
		et.Tick(clock.Now())
		clock.Advance(time.Hour)
	}

	fmt.Println("decentralized marketplace after 25 rounds (18 services, 24 peers)")
	fmt.Println()
	fmt.Printf("%-14s %-10s %-10s %-10s %s\n", "service", "tier", "vu-qos", "eigentrust", "complaints")
	for _, s := range specs[:9] {
		row := []float64{}
		for _, m := range mechs {
			tv, ok := m.Score(core.Query{Subject: s.Desc.Service, Context: "storage", Facet: core.FacetOverall})
			if !ok {
				row = append(row, -1)
				continue
			}
			row = append(row, tv.Score)
		}
		fmt.Printf("%-14s %-10s %-10.2f %-10.2f %.2f\n",
			s.Desc.Service, s.Tier, row[0], row[1], row[2])
	}
	fmt.Println()
	fmt.Println("communication bills (the survey's warning about decentralized designs):")
	fmt.Printf("  vu-qos P-Grid registries: %6d messages\n", gridNet.MessageCount())
	fmt.Printf("  eigentrust gossip:        %6d messages\n", etNet.MessageCount())
	fmt.Printf("  complaint P-Grid:         %6d messages\n", compNet.MessageCount())
}
