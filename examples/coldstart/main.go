// Coldstart demonstrates the paper's Section-5 research direction —
// provider-level reputation — through the public API: a marketplace learns
// a provider's track record, its reputation history is persisted and
// replayed into a fresh marketplace, and a brand-new service from the
// reputable provider is preferred immediately, before a single rating.
//
//	go run ./examples/coldstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"wstrust"
)

func main() {
	market, err := wstrust.NewMarketplace(
		wstrust.WithSeed(31),
		wstrust.WithExploration(0.15),
		wstrust.WithProviderBootstrap(),
	)
	if err != nil {
		log.Fatal(err)
	}
	_ = market.RegisterConsumer("alice", wstrust.Preferences{
		wstrust.ResponseTime: 1, wstrust.Accuracy: 1, wstrust.Cost: 1,
	})

	// Two providers with opposite track records, three services each.
	publish := func(provider wstrust.ProviderID, idx int, rt, acc, avail float64) wstrust.ServiceID {
		id := wstrust.ServiceID(fmt.Sprintf("%s-svc-%d", provider, idx))
		d := wstrust.ServiceDescription{
			Service:    id,
			Provider:   provider,
			Name:       string(id),
			Category:   "payments",
			Operations: []wstrust.ServiceOperation{{Name: "Execute"}},
			Advertised: wstrust.QoSVector{wstrust.ResponseTime: rt},
		}
		b := wstrust.ServiceBehavior{True: wstrust.QoSVector{
			wstrust.ResponseTime: rt, wstrust.Accuracy: acc,
			wstrust.Availability: avail, wstrust.Cost: 5,
		}, Jitter: 0.05}
		if err := market.PublishService(d, b); err != nil {
			log.Fatal(err)
		}
		return id
	}
	for i := 0; i < 3; i++ {
		publish("acme", i, 90, 0.95, 0.99)   // consistently excellent
		publish("shoddy", i, 430, 0.2, 0.65) // consistently awful
	}

	// Phase 1: alice learns the market.
	for i := 0; i < 60; i++ {
		if _, err := market.Use("alice", "payments"); err != nil {
			log.Fatal(err)
		}
	}

	// Persist the reputation history...
	var history bytes.Buffer
	if err := market.ExportHistory(&history); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 complete: %d bytes of feedback history exported\n\n", history.Len())

	// ...and replay it into a brand-new marketplace (a restarted node).
	restarted, err := wstrust.NewMarketplace(
		wstrust.WithSeed(32),
		wstrust.WithProviderBootstrap(),
	)
	if err != nil {
		log.Fatal(err)
	}
	_ = restarted.RegisterConsumer("alice", wstrust.Preferences{
		wstrust.ResponseTime: 1, wstrust.Accuracy: 1, wstrust.Cost: 1,
	})
	n, err := restarted.ImportHistory(&history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted marketplace replayed %d feedback records\n\n", n)

	// Phase 2: each provider launches a NEW service, identical on paper.
	launch := func(m *wstrust.Marketplace, provider wstrust.ProviderID) wstrust.ServiceID {
		id := wstrust.ServiceID(string(provider) + "-launch")
		d := wstrust.ServiceDescription{
			Service:    id,
			Provider:   provider,
			Name:       string(id),
			Category:   "launches",
			Operations: []wstrust.ServiceOperation{{Name: "Execute"}},
			Advertised: wstrust.QoSVector{wstrust.ResponseTime: 120},
		}
		b := wstrust.ServiceBehavior{True: wstrust.QoSVector{
			wstrust.ResponseTime: 120, wstrust.Accuracy: 0.9, wstrust.Availability: 0.99,
		}}
		if err := m.PublishService(d, b); err != nil {
			log.Fatal(err)
		}
		return id
	}
	launch(restarted, "acme")
	launch(restarted, "shoddy")

	fmt.Println("first 10 selections among the two unrated newcomers:")
	picks := map[wstrust.ServiceID]int{}
	for i := 0; i < 10; i++ {
		sel, err := restarted.Use("alice", "launches")
		if err != nil {
			log.Fatal(err)
		}
		picks[sel.Service]++
	}
	for svc, n := range picks {
		fmt.Printf("  %-16s %d×\n", svc, n)
	}
	fmt.Println()
	fmt.Println("\"If a provider has a good reputation for providing good quality services,")
	fmt.Println(" it is easy for a consumer to believe that a new service offered by this")
	fmt.Println(" provider has a good quality too.\" — Section 4")
}
