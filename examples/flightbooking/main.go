// Flightbooking demonstrates the paper's Figure 1B mediated-selection
// scenario: consumers use flight-booking web services (intermediaries,
// like Expedia) to obtain flights from airlines (the "general services",
// like Air Canada). The quality that matters is mostly the airline's, so a
// trust mechanism keyed to the booking site's own snappiness picks badly,
// while one rating end-to-end satisfaction picks well.
//
//	go run ./examples/flightbooking
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"wstrust/internal/core"
	"wstrust/internal/qos"
	"wstrust/internal/simclock"
	"wstrust/internal/soa"
	"wstrust/internal/trust/beta"
)

type booking struct {
	desc    soa.Description
	airline string
	// airlineQ is the general service's quality; siteSpeed the
	// intermediary's own virtue. The flashiest sites front the worst
	// airlines, as in any good cautionary tale.
	airlineQ  float64
	siteSpeed float64
}

func main() {
	clock := simclock.NewVirtual()
	rng := simclock.NewRand(7)
	fabric := soa.NewFabric(clock, simclock.Stream(7, "fabric"), soa.NewUDDI())

	airlines := map[string]float64{
		"aurora-air": 0.95, "maple-jet": 0.75, "prairie-wings": 0.45, "budget-bird": 0.15,
	}
	names := []string{"aurora-air", "maple-jet", "prairie-wings", "budget-bird"}
	var bookings []booking
	for i := 0; i < 12; i++ {
		airline := names[i%len(names)]
		q := airlines[airline]
		rt := 80 + q*300 // worse airline ⇒ faster site
		d := soa.Description{
			Service:    core.NewServiceID(i + 1),
			Provider:   core.NewProviderID(i + 1),
			Name:       fmt.Sprintf("book-%s-%d", airline, i+1),
			Category:   "flight-booking",
			Operations: []soa.Operation{{Name: "Book", Input: "itinerary", Output: "ticket"}},
			Advertised: qos.Vector{qos.ResponseTime: rt},
		}
		if err := fabric.Register(d, soa.Behavior{
			True:   qos.Vector{qos.ResponseTime: rt, qos.Availability: 0.99},
			Jitter: 0.05,
		}); err != nil {
			log.Fatal(err)
		}
		bookings = append(bookings, booking{
			desc: d, airline: airline, airlineQ: q, siteSpeed: 1 - (rt-80)/320,
		})
	}
	byID := map[core.ServiceID]booking{}
	var cands []core.Candidate
	for _, b := range bookings {
		byID[b.desc.Service] = b
		cands = append(cands, b.desc.Candidate())
	}

	run := func(rateEndToEnd bool) (core.ServiceID, float64) {
		mech := beta.New()
		engine := core.NewEngine(mech, simclock.Stream(7, fmt.Sprintf("engine-%v", rateEndToEnd)),
			core.WithPolicy(core.PolicyEpsilonGreedy), core.WithEpsilon(0.1))
		var totalQ float64
		var n int
		for round := 0; round < 40; round++ {
			for c := 1; c <= 10; c++ {
				consumer := core.NewConsumerID(c)
				chosen, _, err := engine.Select(consumer, nil, cands)
				if err != nil {
					log.Fatal(err)
				}
				b := byID[chosen.Service]
				if _, err := fabric.Invoke(consumer, chosen.Service, "Book"); err != nil {
					log.Fatal(err)
				}
				totalQ += b.airlineQ
				n++
				var verdict float64
				if rateEndToEnd {
					// The whole journey: mostly the flight, a bit the site.
					verdict = 0.8*b.airlineQ + 0.2*b.siteSpeed + (rng.Float64()-0.5)*0.08
				} else {
					// Only the booking site's snappiness.
					verdict = b.siteSpeed
				}
				verdict = math.Max(0, math.Min(1, verdict))
				if err := mech.Submit(core.Feedback{
					Consumer: consumer, Service: chosen.Service, Provider: b.desc.Provider,
					Context: "flight-booking",
					Ratings: map[core.Facet]float64{core.FacetOverall: verdict},
					At:      clock.Now(),
				}); err != nil {
					log.Fatal(err)
				}
			}
			clock.Advance(time.Hour)
		}
		// Most-trusted service at the end.
		bestID, bestScore := core.ServiceID(""), -1.0
		for _, b := range bookings {
			tv, ok := mech.Score(core.Query{Subject: b.desc.Service, Context: "flight-booking", Facet: core.FacetOverall})
			if ok && tv.Score > bestScore {
				bestID, bestScore = b.desc.Service, tv.Score
			}
		}
		return bestID, totalQ / float64(n)
	}

	siteID, siteMeanQ := run(false)
	e2eID, e2eMeanQ := run(true)

	fmt.Println("Figure 1B — mediated selection through booking intermediaries")
	fmt.Println()
	fmt.Printf("%-34s %-22s %s\n", "trust keyed to", "most-trusted service", "mean flight quality experienced")
	fmt.Printf("%-34s %-22s %.2f  (fronts %s)\n",
		"booking site's own speed", siteID, siteMeanQ, byID[siteID].airline)
	fmt.Printf("%-34s %-22s %.2f  (fronts %s)\n",
		"end-to-end journey satisfaction", e2eID, e2eMeanQ, byID[e2eID].airline)
	fmt.Println()
	fmt.Println("The paper's point: \"the major part of selecting a web service is decided")
	fmt.Println("by the general service properties\" — rate the journey, not the website.")
}
